"""Broadcast runner: drives a protocol over a radio network and records
everything the experiments need (completion round, per-round progress,
first-informed times).

Two entry points share one engine:

* :func:`run_broadcast_batch` — the trial-vectorized engine.  ``T``
  independent trials advance together and come back as a
  :class:`BatchBroadcastResult` (per-trial rounds/completion/energy plus
  aggregate quantiles).
* :func:`run_broadcast` — the classic single-run API, now the ``T = 1``
  special case of the batch engine.

Two interchangeable backends sit behind them, selected by ``engine``:

* ``dense`` — trial state as ``(n, T)`` bool matrices, one sparse integer
  product per round, completed trials compacted out of the working set.
* ``bitset`` — trial state packed 64-to-a-word (``(n, ceil(T/64))``
  uint64), reception via CSR neighbour-word gathers with popcount-based
  counting (:mod:`repro.radio.bitset`), no scipy and no ``(n, T)``
  transients — the datacenter-scale path.  Completed trials are frozen by
  a packed ``running`` mask instead of compaction (counter-based
  randomness makes the remaining trials' streams independent of it).
* ``auto`` — bitset when the channel and protocol support it natively and
  the graph is large enough to benefit; dense otherwise.

Both backends are bit-for-bit identical on every channel/protocol the
bitset path supports — the property ``tests/radio/test_bitset_engine.py``
pins across families, channels and word-boundary trial counts.

Seeding contract: ``run_broadcast_batch(..., trials=T, seed=master)``
derives per-trial seeds with :func:`repro._util.spawn_seeds` and is
bit-for-bit identical to ``T`` standalone ``run_broadcast`` calls seeded
with those children — the property the equivalence tests pin down.  The
contract extends to channel models (:mod:`repro.radio.channel`): the
runner resets the active channel with the same per-trial generators right
after the protocol, so randomized channels (erasure) follow the same
counter-based discipline.  :class:`MemoryBudget` leans on the same
anchor: a budgeted run derives the full per-trial generator list once and
slices it into column shards, so shard boundaries cannot perturb any
trial's stream and the merged result is bit-for-bit the unsharded one.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

from repro._util import as_rng, spawn_seeds
from repro.backend import HOST, resolve_backend
from repro.graphs.graph import Graph
from repro.obs.telemetry import TELEMETRY_PREFIX, TelemetryAccumulator
from repro.radio.channel import ChannelModel, ClassicCollision
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol, legacy_hooks_specialized
from repro.workload import BroadcastWorkload, as_workload

# Host namespace via the backend shim: results, protocol coins, and the
# packed-word engine are host-resident by contract; the dense loop's
# backend-active work goes through the resolved backend instead.
np = HOST.xp

__all__ = [
    "BatchBroadcastResult",
    "BroadcastResult",
    "MemoryBudget",
    "merge_batches",
    "run_broadcast",
    "run_broadcast_batch",
]

#: Recognized engine selectors.
_ENGINES = ("auto", "dense", "bitset")

#: ``engine="auto"`` switches to the bitset backend at this vertex count.
#: Below it the dense engine's trial compaction usually wins; above it the
#: packed working set and CSR gathers dominate.
_AUTO_BITSET_MIN_N = 32768

#: Fresh-bit rows per first-informed scatter chunk in the bitset loop:
#: keeps the unpacked bool and nonzero index transients bounded by the
#: chunk, not by the frontier width.
_SCATTER_ROW_BLOCK = 2048

#: Rounds between drains of the bitset engine's transmission tally: caps
#: its counter-plane stack at ``log2`` of this many ``(n, W)`` layers.
_TALLY_DRAIN_ROUNDS = 32


@dataclass(frozen=True)
class BroadcastResult:
    """Trace of one broadcast execution.

    Attributes
    ----------
    rounds:
        Rounds executed (= rounds to full coverage when ``completed``).
    completed:
        Whether every processor was informed before the round cap.
    informed_per_round:
        ``informed_per_round[r]`` = informed count *after* round ``r``
        (index 0 is the state after the first round; the initial state has
        exactly the source informed).
    first_informed_round:
        Per-vertex round at which the vertex first became informed
        (``0`` for the source, ``-1`` if never).
    transmissions:
        Total number of (node, round) transmissions — the energy cost.
    """

    rounds: int
    completed: bool
    informed_per_round: np.ndarray
    first_informed_round: np.ndarray
    transmissions: int

    def rounds_to_fraction(self, fraction: float, total: int | None = None) -> int:
        """First round index (1-based) at which the informed count reaches
        ``fraction`` of ``total`` (default: all vertices); ``-1`` if never."""
        target = fraction * (
            total if total is not None else self.first_informed_round.size
        )
        reached = np.flatnonzero(self.informed_per_round >= target)
        return int(reached[0]) + 1 if reached.size else -1


@dataclass(frozen=True)
class BatchBroadcastResult:
    """Traces of ``T`` independent broadcast trials run as one batch.

    Attributes
    ----------
    trials:
        Number of trials ``T``.
    rounds:
        ``(T,)`` int64 — rounds each trial executed before completing (or
        the round cap for incomplete trials).
    completed:
        ``(T,)`` bool — whether each trial reached full coverage.
    informed_per_round:
        ``(R, T)`` int64 where ``R = rounds.max()``; entry ``[r, t]`` is
        trial ``t``'s informed count after round ``r``.  Rows past a
        trial's completion stay at its final count (``n`` except under
        crash-fault channels, whose coverage excludes dead processors).
    first_informed_round:
        ``(n, T)`` int64 — per-vertex, per-trial first-informed round
        (``0`` for the source, ``-1`` if never).
    transmissions:
        ``(T,)`` int64 — per-trial total (node, round) transmissions.
    extras:
        Workload-specific result arrays (trial axis last), e.g. gossip's
        ``sources`` or aggregate's ``estimate``; empty for broadcast.
    """

    trials: int
    rounds: np.ndarray
    completed: np.ndarray
    informed_per_round: np.ndarray
    first_informed_round: np.ndarray
    transmissions: np.ndarray
    extras: dict = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that informed everyone."""
        return float(self.completed.mean()) if self.trials else 0.0

    @property
    def mean_rounds(self) -> float:
        """Mean rounds across trials."""
        return float(self.rounds.mean())

    def round_quantiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> np.ndarray:
        """Quantiles of the per-trial round counts (the aggregate view the
        paper's w.h.p. statements call for)."""
        return np.quantile(self.rounds, np.asarray(qs, dtype=float))

    def trial(self, t: int) -> BroadcastResult:
        """Extract trial ``t`` as a standalone :class:`BroadcastResult`."""
        if not 0 <= t < self.trials:
            raise IndexError(f"trial {t} out of range [0, {self.trials})")
        r = int(self.rounds[t])
        return BroadcastResult(
            rounds=r,
            completed=bool(self.completed[t]),
            informed_per_round=self.informed_per_round[:r, t].copy(),
            first_informed_round=self.first_informed_round[:, t].copy(),
            transmissions=int(self.transmissions[t]),
        )


def merge_batches(parts: Sequence[BatchBroadcastResult]) -> BatchBroadcastResult:
    """Concatenate per-shard batch results back into one batch.

    Shards may have run different numbers of rounds; shorter
    ``informed_per_round`` matrices are padded by repeating their final
    row, matching the engine's own semantics (rows past a trial's
    completion hold its final informed count).  Used by both the
    process-parallel scenario sharder
    (:func:`repro.scenario.tasks.run_scenario_sharded`) and the
    :class:`MemoryBudget` column sharder below.
    """
    if not parts:
        raise ValueError("merge_batches needs at least one shard")
    if len(parts) == 1:
        return parts[0]
    rounds_cap = max(p.informed_per_round.shape[0] for p in parts)
    padded = []
    for p in parts:
        have = p.informed_per_round.shape[0]
        if have == rounds_cap:
            padded.append(p.informed_per_round)
        else:
            padded.append(
                np.pad(
                    p.informed_per_round,
                    ((0, rounds_cap - have), (0, 0)),
                    mode="edge",
                )
            )
    keys = set().union(*(p.extras.keys() for p in parts))
    if any(set(p.extras) != keys for p in parts):
        raise ValueError("shards carry mismatched extras keys")
    # Extras arrays put the trial axis last by convention, so shards
    # concatenate the same way the per-trial result vectors do.  Telemetry
    # matrices additionally need their round axis aligned: a shard that
    # finished early records zero activity in the missing rounds (frozen
    # trials transmit nothing), so zero-padding reproduces the unsharded
    # run bit for bit.
    extras = {}
    for key in sorted(keys):
        arrays = [np.asarray(p.extras[key]) for p in parts]
        if key.startswith(TELEMETRY_PREFIX):
            cap = max(a.shape[0] for a in arrays)
            arrays = [
                a
                if a.shape[0] == cap
                else np.pad(a, ((0, cap - a.shape[0]), (0, 0)))
                for a in arrays
            ]
        extras[key] = np.concatenate(arrays, axis=-1)
    return BatchBroadcastResult(
        trials=sum(p.trials for p in parts),
        rounds=np.concatenate([p.rounds for p in parts]),
        completed=np.concatenate([p.completed for p in parts]),
        informed_per_round=np.concatenate(padded, axis=1),
        first_informed_round=np.concatenate(
            [p.first_informed_round for p in parts], axis=1
        ),
        transmissions=np.concatenate([p.transmissions for p in parts]),
        extras=extras,
    )


@dataclass(frozen=True)
class MemoryBudget:
    """Byte ceiling for one batch run's trial working set.

    The engine's per-round working set scales as ``trials × n``:
    roughly 18 bytes per (trial, node) on the dense backend (bool state
    matrices, integer count matrix, int64 first-informed output) and
    roughly 10 on the bitset backend (the int64 first-informed output
    dominates; packed state adds ~0.5).  :meth:`max_trials` inverts that
    estimate, and :func:`run_broadcast_batch` splits any larger batch into
    sequential column shards of at most that many trials, merging the
    shard results with :func:`merge_batches` — bit-for-bit equal to the
    unsharded run, because the per-trial generator list is derived once
    and sliced.
    """

    limit_bytes: int

    # Working-set estimates, bytes per (trial, node); deliberately coarse —
    # the budget is a planning ceiling, not an allocator.
    _PER_TRIAL_NODE_BYTES = {"dense": 18, "bitset": 10}

    def __post_init__(self) -> None:
        if int(self.limit_bytes) < 1:
            raise ValueError(
                f"memory budget must be >= 1 byte, got {self.limit_bytes}"
            )

    def max_trials(self, n: int, engine: str = "dense") -> int:
        """Largest trial-shard width fitting the budget on ``engine``
        (always at least 1 — a single trial must be allowed to run)."""
        per = self._PER_TRIAL_NODE_BYTES.get(
            engine, self._PER_TRIAL_NODE_BYTES["dense"]
        )
        return max(1, int(self.limit_bytes) // (per * max(1, int(n))))


def _as_memory_budget(value) -> MemoryBudget | None:
    if value is None or isinstance(value, MemoryBudget):
        return value
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return MemoryBudget(int(value))
    raise TypeError(
        "memory_budget must be None, an int byte count, or a MemoryBudget; "
        f"got {type(value).__name__}"
    )


def _resolve_engine(
    engine: str, protocol, channel_model: ChannelModel, n: int, workload,
    backend=HOST,
) -> str:
    """Resolve ``auto`` and validate explicit engine requests.

    An explicit ``bitset`` request on a channel without packed-word
    support — or on a value workload, whose per-cell integers have no
    packed representation — falls back to dense with a warning (the
    result is identical, only the working-set shape differs).  ``auto``
    picks bitset only when the workload is set-semantics, the channel and
    the protocol run natively on words, and the graph is large enough for
    the packed path to pay off.

    The bitset engine is numpy-only (its uint64 word kernels have no
    backend representation): an explicit ``bitset`` request under a
    non-host backend warns and runs the host bitset path; ``auto`` under
    a non-host backend picks dense — the path the backend accelerates.
    """
    if engine not in _ENGINES:
        raise ValueError(
            f"engine must be one of {', '.join(_ENGINES)}; got {engine!r}"
        )
    supported = bool(getattr(channel_model, "supports_bitset", False))
    if engine == "bitset":
        if not backend.is_host:
            warnings.warn(
                "the packed-bitset engine is numpy-only; ignoring backend "
                f"{backend.name!r} and running the host bitset path",
                RuntimeWarning,
                stacklevel=3,
            )
        if not workload.set_semantics:
            warnings.warn(
                f"workload {workload.name!r} folds per-cell values and "
                "cannot run packed; falling back to dense",
                RuntimeWarning,
                stacklevel=3,
            )
            return "dense"
        if not supported:
            warnings.warn(
                f"channel {channel_model.name!r} does not support the "
                "packed-bitset engine; falling back to dense",
                RuntimeWarning,
                stacklevel=3,
            )
            return "dense"
        return "bitset"
    if engine == "dense":
        return "dense"
    if (
        backend.is_host
        and workload.set_semantics
        and supported
        and not legacy_hooks_specialized(protocol)
        and bool(getattr(type(protocol), "words_native", False))
        and n >= _AUTO_BITSET_MIN_N
    ):
        return "bitset"
    return "dense"


def _default_max_rounds(n: int) -> int:
    return max(1000, 50 * n * max(1, int(np.log2(max(2, n)))))


def run_broadcast_batch(
    graph: Graph,
    protocol: BroadcastProtocol,
    trials: int,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    trial_rngs: Sequence | None = None,
    channel: ChannelModel | None = None,
    engine: str = "auto",
    memory_budget: MemoryBudget | int | None = None,
    workload=None,
    telemetry: bool = False,
    backend=None,
) -> BatchBroadcastResult:
    """Run ``trials`` independent executions of ``workload`` under
    ``protocol`` on ``graph``, advanced together round by round.

    Per round, the protocol produces the trial transmit state (gated by
    the workload's eligibility), one vectorized kernel applies the
    channel semantics to every trial at once, and the workload folds the
    deliveries into newly-satisfied cells; trials that already completed
    are frozen (they stop transmitting and stop accruing rounds).  The
    global loop ends when all trials complete or the round cap is hit.

    Parameters
    ----------
    seed:
        Master seed/generator; ``trials`` child seeds are derived from it
        via :func:`repro._util.spawn_seeds`, one per trial.
    trial_rngs:
        Explicit per-trial seeds/generators (overrides ``seed``) — the hook
        :func:`run_broadcast` uses to be the ``T = 1`` special case.
    channel:
        Reception model (:mod:`repro.radio.channel`); ``None`` means the
        paper's classic collision model.  The runner resets the channel
        with the per-trial generators (after the protocol, so counter keys
        stay aligned with standalone runs), forwards channel feedback to
        the protocol's ``channel_feedback`` hooks, and measures completion
        against the channel's coverage targets (crashed processors are
        not waited for).
    engine:
        ``"dense"``, ``"bitset"``, or ``"auto"`` (see the module
        docstring).  Explicit ``bitset`` on an unsupported channel or a
        value workload warns and runs dense.
    memory_budget:
        Optional byte ceiling (:class:`MemoryBudget` or a plain int of
        bytes).  Batches whose working set would exceed it are split into
        sequential trial-column shards and merged back — bit-for-bit
        identical to the unbudgeted run.
    workload:
        The task to run (:mod:`repro.workload`): an instance, a
        :class:`~repro.workload.WorkloadSpec`, a spec string
        (``"gossip(k=4)"``), or ``None`` for single-source broadcast from
        ``source`` — the latter is bit-for-bit the pre-workload engine.
        ``source`` applies only to that default; other workloads pin
        their own sources (``broadcast(source=3)``, ``gossip(source=0)``).
    telemetry:
        When true, both engines additionally record per round × per trial
        collision telemetry (transmitters, receptions, collision victims,
        newly informed, wasted transmissions — see
        :mod:`repro.obs.telemetry`), returned as ``(R, T)`` int64 extras
        under ``telemetry_``-prefixed keys, bit-for-bit identical between
        engines and across memory-budget shards.  Off by default and a
        strict no-op when off — no allocation, no per-round work beyond
        one predicate check.
    backend:
        Array backend the dense engine's kernels run on
        (:mod:`repro.backend`): an
        :class:`~repro.backend.ArrayBackend`, a registry name
        (``"torch"``, ``"torch:cuda"``), or ``None`` for host numpy —
        the bit-for-bit default.  Resolved once per call (before any
        memory-budget sharding), so an unavailable accelerator warns
        exactly once and the whole batch runs on numpy.  Results are
        host numpy arrays regardless of backend.
    """
    if workload is None:
        workload = BroadcastWorkload(source=source)
    else:
        if source != 0:
            raise ValueError(
                "source= applies only to the default broadcast workload; "
                "pin the source on the workload itself "
                "(e.g. broadcast(source=3))"
            )
        workload = as_workload(workload)
    workload.check_graph(graph)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if trial_rngs is None:
        trial_rngs = [as_rng(s) for s in spawn_seeds(as_rng(seed), trials)]
    else:
        if len(trial_rngs) != trials:
            raise ValueError(
                f"trial_rngs has {len(trial_rngs)} entries for {trials} trials"
            )
        trial_rngs = [as_rng(g) for g in trial_rngs]
    if max_rounds is None:
        max_rounds = _default_max_rounds(graph.n)

    channel_model = channel if channel is not None else ClassicCollision()
    workload.check_channel(channel_model)
    # A protocol whose class specializes the legacy single-run hooks more
    # deeply than the batch hooks (e.g. a DecayProtocol subclass overriding
    # only `transmitters`) must run through the per-trial clone adapter, or
    # its overrides would be silently bypassed by the inherited vectorized
    # path.
    face = (
        BroadcastProtocol if legacy_hooks_specialized(protocol) else
        type(protocol)
    )
    # Resolved once, before any sharding: a missing accelerator extra
    # warns exactly once per call, not once per memory-budget shard.
    bk = resolve_backend(backend)
    resolved = _resolve_engine(
        engine, protocol, channel_model, graph.n, workload, bk
    )

    telemetry = bool(telemetry)
    budget = _as_memory_budget(memory_budget)
    if budget is not None:
        shard = budget.max_trials(graph.n, resolved)
        if shard < trials:
            parts = [
                _run_resolved(
                    resolved, graph, protocol, face, channel_model,
                    workload, max_rounds, trial_rngs[start : start + shard],
                    telemetry, bk,
                )
                for start in range(0, trials, shard)
            ]
            return merge_batches(parts)
    return _run_resolved(
        resolved, graph, protocol, face, channel_model,
        workload, max_rounds, trial_rngs, telemetry, bk,
    )


def _run_resolved(
    resolved, graph, protocol, face, channel_model, workload, max_rounds,
    trial_rngs, telemetry=False, backend=None,
) -> BatchBroadcastResult:
    if resolved == "bitset":
        # Numpy-only by contract — the resolver already warned if a
        # non-host backend was requested alongside an explicit bitset.
        return _run_bitset(
            graph, protocol, face, channel_model, workload, max_rounds,
            trial_rngs, telemetry,
        )
    return _run_dense(
        graph, protocol, face, channel_model, workload, max_rounds,
        trial_rngs, telemetry, backend,
    )


def _run_dense(
    graph, protocol, face, channel_model, workload, max_rounds, trial_rngs,
    telemetry=False, backend=None,
) -> BatchBroadcastResult:
    """The ``(n, T)`` bool-matrix engine with trial compaction.

    The working state (``satisfied``, transmit masks, reception, value
    folds) lives on ``backend``; protocol coin flips, channel coins,
    bookkeeping (first-informed rounds, energy tallies, the count log)
    and every result array stay host numpy, with explicit
    ``asarray``/``to_numpy`` transfer at the boundaries.  On the host
    backend every transfer is an identity ``np.asarray`` — the loop is
    bit-for-bit the pre-backend engine.
    """
    trials = len(trial_rngs)
    network = RadioNetwork(graph, channel=channel_model, backend=backend)
    bk = network.backend
    face.reset_batch(protocol, network, workload.protocol_source, trial_rngs)
    # Channel after protocol: both may draw per-trial counter keys from the
    # same generators, and standalone runs use the same order.
    network.channel.reset(network, trial_rngs)
    # Workload last: its per-trial draws (gossip sources, sketch levels)
    # come after the resets', and the broadcast workload draws nothing —
    # keeping every pre-workload stream untouched.
    state = workload.make_state(network, trial_rngs)
    # Crash faults remove processors from the coverage requirement — they
    # can never receive, so waiting for them would always hit the cap.
    targets = network.channel.coverage_targets(network)
    need = graph.n if targets is None else int(np.count_nonzero(targets))
    targets_b = None if targets is None else bk.asarray(targets)

    def colsum(mat):
        # Per-trial column sums, always landing host-side int64.
        return bk.to_numpy(mat.sum(axis=0)).astype(np.int64, copy=False)

    n, T = graph.n, trials
    satisfied = bk.asarray(state.initial_satisfied())
    first_round = np.full((n, T), -1, dtype=np.int64)
    first_round[bk.to_numpy(satisfied)] = 0
    completed = np.zeros(T, dtype=bool)
    rounds = np.zeros(T, dtype=np.int64)
    transmissions = np.zeros(T, dtype=np.int64)
    # Per round: (still-active trial ids, their satisfied counts) — assembled
    # into the dense (R, T) matrix at the end.
    count_log: list[tuple[np.ndarray, np.ndarray]] = []
    tel = TelemetryAccumulator(T) if telemetry else None

    # Completed trials are compacted out of the working set, so late rounds
    # (only the slowest trials still running) cost proportionally less —
    # the batch pays the mean trial length, not T times the max.
    active = np.arange(T)
    counts0 = colsum(satisfied)
    covered0 = counts0 if targets is None else colsum(satisfied[targets_b, :])
    done0 = covered0 >= need
    if done0.any():
        completed[done0] = True
        keep = ~done0
        active = active[keep]
        satisfied = satisfied[:, bk.asarray(keep)]
        if active.size:
            face.select_trials(protocol, keep)
            network.channel.select_trials(keep)
            state.select_trials(keep)

    round_index = 0
    while round_index < max_rounds and active.size:
        eligible = state.transmit_eligible(satisfied)
        # Protocols are host-side (their coins come from the counter RNG,
        # always drawn on numpy): eligibility crosses to host, the
        # produced mask crosses back.
        mask = bk.asarray(
            face.transmitters_batch(
                protocol, round_index, bk.to_numpy(eligible), network
            )
        )
        mask = mask & eligible
        mask = network.channel.effective_transmitters(round_index, mask)
        transmissions[active] += colsum(mask)
        if tel is not None:
            # The channel's own sparse product, pulled forward and primed
            # into the network's identity cache: victims read it here, the
            # channel's deliver reuses it — counts run once either way.
            tcounts = network.transmit_counts(mask)
            network.prime_transmit_counts(mask, tcounts)
        received = network.step(mask, round_index)
        feedback = network.channel.feedback
        if feedback is not None:
            face.channel_feedback_batch(
                protocol, round_index, bk.to_numpy(feedback), network
            )
        fresh = state.fold(round_index, mask, received, satisfied, network)
        if tel is not None:
            # Victims are counted against the base adjacency on every
            # channel (the legacy tracer's convention: lossy channels show
            # as receptions < contacts, not as fewer collisions).  A
            # transmitter is wasted when no neighbour received — a receiver
            # hears its unique transmitting neighbour, so any receiving
            # neighbour is a delivery credit.
            tel.append_active(
                active,
                transmitters=colsum(mask),
                receptions=colsum(received),
                collision_victims=colsum((tcounts >= 2) & ~mask),
                newly_informed=colsum(fresh),
                wasted_transmissions=colsum(
                    mask & ~(network.transmit_counts(received) > 0)
                ),
            )
        round_index += 1
        rounds[active] += 1
        satisfied |= fresh
        rows, cols = np.nonzero(bk.to_numpy(fresh))
        first_round[rows, active[cols]] = round_index
        counts = colsum(satisfied)
        count_log.append((active, counts))
        if targets is None:
            covered = counts
        else:
            covered = colsum(satisfied[targets_b, :])
        keep = covered < need
        if not keep.all():
            completed[active[~keep]] = True
            active = active[keep]
            satisfied = satisfied[:, bk.asarray(keep)]
            face.select_trials(protocol, keep)
            network.channel.select_trials(keep)
            state.select_trials(keep)

    # Rows past a trial's completion hold its final satisfied count (= n for
    # full-coverage channels); holes only appear after a trial leaves the
    # working set, so a running maximum fills them.
    informed_per_round = np.full((round_index, T), -1, dtype=np.int64)
    for r, (idx, counts) in enumerate(count_log):
        informed_per_round[r, idx] = counts
    if round_index:
        # Trials done before round 1 never enter the count log; their
        # columns hold the initial count throughout (broadcast never hits
        # this — its initial coverage is all-or-nothing across trials).
        if done0.any():
            informed_per_round[0, done0] = counts0[done0]
        np.maximum.accumulate(informed_per_round, axis=0, out=informed_per_round)

    extras = state.extras
    if tel is not None:
        extras = {**extras, **tel.extras()}
    return BatchBroadcastResult(
        trials=T,
        rounds=rounds,
        completed=completed,
        informed_per_round=informed_per_round,
        first_informed_round=first_round,
        transmissions=transmissions,
        extras=extras,
    )


def _run_bitset(
    graph, protocol, face, channel_model, workload, max_rounds, trial_rngs,
    telemetry=False,
) -> BatchBroadcastResult:
    """The packed-word backend: trial state 64-to-a-word, CSR gathers.

    Instead of compacting completed trials, their bits are cleared from
    the packed ``running`` mask: they stop transmitting (so other trials'
    reception is unaffected — exactly what dense compaction achieves) and
    their frozen informed words keep contributing their final counts to
    ``informed_per_round``, matching the dense engine's row-fill
    semantics.  Counter-based randomness means never-compacted per-trial
    keys index the same streams either way — the bit-for-bit anchor.

    Only set-semantics workloads run here (``_resolve_engine`` guarantees
    it): satisfaction is a bit, so the workload's whole contribution is
    the packed initial matrix — the fold is the engine's own
    ``received & ~informed``.
    """
    from repro.radio.bitset import (
        TransmissionTally,
        any_neighbor_words,
        any_neighbor_words_at,
        full_mask_words,
        neighbor_fold_words,
        pack_bool_matrix,
        scatter_neighbor_words,
        unpack_words,
        word_column_counts,
    )

    trials = len(trial_rngs)
    network = RadioNetwork(graph, channel=channel_model)
    face.reset_batch(protocol, network, workload.protocol_source, trial_rngs)
    network.channel.reset(network, trial_rngs)
    # Workload last — the same draw order as the dense engine, which is
    # what makes gossip's random sources engine-independent.
    state = workload.make_state(network, trial_rngs)
    targets = network.channel.coverage_targets(network)
    need = graph.n if targets is None else int(np.count_nonzero(targets))
    words_native = bool(getattr(face, "words_native", False))

    n, T = graph.n, trials
    trial_mask = full_mask_words(T)
    initial = state.initial_satisfied()
    informed_words = pack_bool_matrix(initial)
    running = trial_mask.copy()
    active_mask = np.ones(T, dtype=bool)
    # Rows with any informed bit, maintained incrementally: the engine's
    # hint to the protocol's word face (uninformed rows cannot transmit)
    # and the restriction for the popcount passes below.
    informed_any = initial.any(axis=1)

    first_round = np.full((n, T), -1, dtype=np.int64)
    first_round[initial] = 0
    completed = np.zeros(T, dtype=bool)
    rounds = np.zeros(T, dtype=np.int64)
    transmissions = np.zeros(T, dtype=np.int64)
    count_rows: list[np.ndarray] = []
    # Informed counts are maintained incrementally — informed state is
    # monotone, so each round adds exactly the popcount of its fresh bits
    # (restricted to the touched rows) instead of re-counting (n, W).
    counts = word_column_counts(informed_words[np.flatnonzero(informed_any)])[:T]
    covered = (
        counts
        if targets is None
        else word_column_counts(informed_words[targets])[:T]
    )

    done0 = covered >= need
    if done0.any():
        completed[done0] = True
        active_mask &= ~done0
        running = pack_bool_matrix(active_mask[None, :])[0]

    # Energy totals accrue through bit-sliced counter planes, drained
    # (transposed + popcounted) every few dozen rounds instead of paying a
    # 64×64 transpose per round.
    tally = TransmissionTally()
    tel = TelemetryAccumulator(T) if telemetry else None
    tel_zeros = np.zeros(T, dtype=np.int64)

    def tel_rows(words_mat: np.ndarray) -> np.ndarray:
        # flatnonzero on the single word column skips the bool cast a
        # reduction over the trial axis would pay.
        if words_mat.shape[1] == 1:
            return np.flatnonzero(words_mat[:, 0])
        return np.flatnonzero(words_mat.any(axis=1))

    def tel_nnz(words_mat: np.ndarray) -> int:
        # Row-count probe: SIMD count_nonzero costs a fraction of
        # materializing the index vector, so dense rounds can pick the
        # full-matrix path without ever allocating row indices.
        if words_mat.shape[1] == 1:
            return int(np.count_nonzero(words_mat[:, 0]))
        return int(np.count_nonzero(words_mat.any(axis=1)))

    def tel_counts_at(words_mat: np.ndarray, rows: np.ndarray) -> np.ndarray:
        # Per-trial counts restricted to the rows that can contribute —
        # exact (all-zero rows add nothing to any column) and much
        # cheaper in the sparse rounds decay spends most of its schedule
        # in; near-dense matrices fall through to the full popcount (the
        # gather stops paying for itself around 90% row density).
        if rows.size == 0:
            return tel_zeros
        if 10 * rows.size >= 9 * n:
            return word_column_counts(words_mat)[:T]
        return word_column_counts(words_mat[rows])[:T]

    def tel_counts(words_mat: np.ndarray) -> np.ndarray:
        return tel_counts_at(words_mat, tel_rows(words_mat))

    round_index = 0
    informed_rows = np.flatnonzero(informed_any)
    while round_index < max_rounds and active_mask.any():
        if words_native:
            tw = face.transmitters_words(
                protocol, round_index, informed_words, network,
                rows=informed_rows, active=active_mask,
            )
            tw &= informed_words
        else:
            # Pack/unpack adapter for protocols without a word face: the
            # adapter drives completed trials too, but their columns are
            # masked out below and per-trial state keeps them independent.
            informed = unpack_words(informed_words, T)
            mask = face.transmitters_batch(protocol, round_index, informed, network)
            tw = pack_bool_matrix(mask & informed)
        tw &= running
        if tel is None:
            # With telemetry on, the exact per-round transmitter counts
            # below already carry the energy totals (transmissions is
            # their running sum), so the tally's counter planes are
            # skipped entirely rather than paid twice.
            tally.add(tw)
            if round_index % _TALLY_DRAIN_ROUNDS == _TALLY_DRAIN_ROUNDS - 1:
                drained = tally.drain(T)
                if drained is not None:
                    transmissions += drained
        if tel is not None:
            # One pair fold yields both reception and collision structure:
            # exactly-one is primed into the network's identity cache so
            # the channel's deliver reuses it — the fold runs once either
            # way, telemetry's net cost is popcounts plus one OR fold.
            once, twice = neighbor_fold_words(graph.csr, tw)
            # Victim rows are a subset of twice's nonzero rows, so the
            # mask and its counts are built on that restriction directly.
            vic_nnz = tel_nnz(twice)
            if vic_nnz == 0:
                vict_counts = tel_zeros
            elif 10 * vic_nnz < 9 * n:
                vic_rows = tel_rows(twice)
                vict_counts = word_column_counts(
                    twice[vic_rows] & ~tw[vic_rows]
                )[:T]
            else:
                vict_counts = word_column_counts(twice & ~tw)[:T]
            # twice is dead after the victim counts — reduce the pair to
            # exactly-one in place rather than allocating a third plane.
            np.invert(twice, out=twice)
            np.bitwise_and(once, twice, out=once)
            network.prime_exactly_one_words(tw, once)
        received_words = network.step_words(tw, round_index)
        fresh = received_words & ~informed_words
        round_index += 1
        rounds[active_mask] += 1
        informed_words |= fresh
        newly = None
        touched = np.flatnonzero(fresh.any(axis=1))
        if touched.size:
            informed_any[touched] = True
            # Row-blocked scatter: bounds the unpack/nonzero transients to
            # a few MiB however wide the frontier gets.
            for s in range(0, touched.size, _SCATTER_ROW_BLOCK):
                blk = touched[s : s + _SCATTER_ROW_BLOCK]
                rr, tt = np.nonzero(unpack_words(fresh[blk], T))
                first_round[blk[rr], tt] = round_index
            fresh_touched = fresh[touched]
            newly = word_column_counts(fresh_touched)[:T]
            counts = counts + newly
            if targets is not None:
                covered = covered + word_column_counts(
                    fresh_touched[targets[touched]]
                )[:T]
            if informed_rows.size < n:
                informed_rows = np.flatnonzero(informed_any)
        count_rows.append(counts)
        if tel is not None:
            # Wasted transmissions only exist at transmitter rows, so the
            # neighbour-OR fold is evaluated there alone when sparse (and
            # the gathered tw rows are reused for the transmitter counts);
            # the restricted fold stops winning around 60% row density.
            # Past that — the blast rounds — almost nobody *receives*, so
            # the fold flips to a push from the scarce receiver rows.
            tx_nnz = tel_nnz(tw)
            recv_nnz = tel_nnz(received_words)
            # Row indices are materialized only for genuinely sparse
            # matrices; the scatter trigger (below 1/(4d) density) is
            # always inside that regime.
            recv_rows = (
                tel_rows(received_words)
                if recv_nnz and 10 * recv_nnz < 9 * n
                else None
            )
            if tx_nnz == 0:
                tx_counts = wasted_counts = tel_zeros
            elif 5 * tx_nnz < 3 * n:
                tx_rows = tel_rows(tw)
                tw_sub = tw[tx_rows]
                tx_counts = word_column_counts(tw_sub)[:T]
                if recv_nnz == 0:
                    # No receptions anywhere: every transmission in every
                    # trial was wasted, no fold needed.
                    wasted_counts = tx_counts
                else:
                    heard_sub = any_neighbor_words_at(
                        graph.csr, received_words, tx_rows
                    )
                    # The fold result is freshly allocated — mask it in
                    # place instead of building a third m-row plane.
                    np.invert(heard_sub, out=heard_sub)
                    heard_sub &= tw_sub
                    wasted_counts = word_column_counts(heard_sub)[:T]
            else:
                tx_counts = word_column_counts(tw)[:T]
                if recv_nnz == 0:
                    wasted_counts = tx_counts
                else:
                    if (
                        recv_rows is not None
                        and 4 * graph.csr.max_degree * recv_nnz < n
                    ):
                        heard = scatter_neighbor_words(
                            graph.csr, received_words, recv_rows
                        )
                    else:
                        heard = any_neighbor_words(graph.csr, received_words)
                    np.invert(heard, out=heard)
                    heard &= tw
                    wasted_counts = tel_counts(heard)
            transmissions += tx_counts
            if recv_nnz == 0:
                recv_counts = tel_zeros
            elif recv_rows is None:
                recv_counts = word_column_counts(received_words)[:T]
            else:
                recv_counts = word_column_counts(received_words[recv_rows])[:T]
            tel.append_full(
                transmitters=tx_counts,
                receptions=recv_counts,
                collision_victims=vict_counts,
                newly_informed=newly if newly is not None else tel_zeros,
                wasted_transmissions=wasted_counts,
            )
        if targets is None:
            covered = counts
        done = (covered >= need) & active_mask
        if done.any():
            completed |= done
            active_mask &= ~done
            running = pack_bool_matrix(active_mask[None, :])[0]

    if tel is None:
        drained = tally.drain(T)
        if drained is not None:
            transmissions += drained
    informed_per_round = (
        np.stack(count_rows)
        if count_rows
        else np.zeros((0, T), dtype=np.int64)
    )

    extras = state.extras
    if tel is not None:
        extras = {**extras, **tel.extras()}
    return BatchBroadcastResult(
        trials=T,
        rounds=rounds,
        completed=completed,
        informed_per_round=informed_per_round,
        first_informed_round=first_round,
        transmissions=transmissions,
        extras=extras,
    )


def run_broadcast(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    channel: ChannelModel | None = None,
    engine: str = "auto",
    backend=None,
) -> BroadcastResult:
    """Run ``protocol`` on ``graph`` from ``source`` until full coverage or
    ``max_rounds`` (default ``50·n·log₂n``-ish safety cap).

    The runner enforces the radio model: only informed processors may
    transmit, and reception follows the active ``channel`` (default: the
    classic exactly-one-transmitting-neighbour collision model).  This is
    the ``T = 1`` special case of :func:`run_broadcast_batch`; the ``seed``
    seeds the single trial directly.
    """
    batch = run_broadcast_batch(
        graph,
        protocol,
        trials=1,
        source=source,
        max_rounds=max_rounds,
        trial_rngs=[as_rng(seed)],
        channel=channel,
        engine=engine,
        backend=backend,
    )
    return batch.trial(0)
