"""Broadcast runner: drives a protocol over a radio network and records
everything the experiments need (completion round, per-round progress,
first-informed times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.graphs.graph import Graph
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol

__all__ = ["BroadcastResult", "run_broadcast"]


@dataclass(frozen=True)
class BroadcastResult:
    """Trace of one broadcast execution.

    Attributes
    ----------
    rounds:
        Rounds executed (= rounds to full coverage when ``completed``).
    completed:
        Whether every processor was informed before the round cap.
    informed_per_round:
        ``informed_per_round[r]`` = informed count *after* round ``r``
        (index 0 is the state after the first round; the initial state has
        exactly the source informed).
    first_informed_round:
        Per-vertex round at which the vertex first became informed
        (``0`` for the source, ``-1`` if never).
    transmissions:
        Total number of (node, round) transmissions — the energy cost.
    """

    rounds: int
    completed: bool
    informed_per_round: np.ndarray
    first_informed_round: np.ndarray
    transmissions: int

    def rounds_to_fraction(self, fraction: float, total: int | None = None) -> int:
        """First round index (1-based) at which the informed count reaches
        ``fraction`` of ``total`` (default: all vertices); ``-1`` if never."""
        target = fraction * (
            total if total is not None else self.first_informed_round.size
        )
        reached = np.flatnonzero(self.informed_per_round >= target)
        return int(reached[0]) + 1 if reached.size else -1


def run_broadcast(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    max_rounds: int | None = None,
    rng=None,
) -> BroadcastResult:
    """Run ``protocol`` on ``graph`` from ``source`` until full coverage or
    ``max_rounds`` (default ``50·n·log₂n``-ish safety cap).

    The runner enforces the radio model: only informed processors may
    transmit, and reception requires exactly one transmitting neighbour.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")
    network = RadioNetwork(graph)
    gen = as_rng(rng)
    protocol.reset(network, source, gen)
    if max_rounds is None:
        max_rounds = max(1000, 50 * graph.n * max(1, int(np.log2(max(2, graph.n)))))

    informed = np.zeros(graph.n, dtype=bool)
    informed[source] = True
    first_round = np.full(graph.n, -1, dtype=np.int64)
    first_round[source] = 0
    informed_counts: list[int] = []
    transmissions = 0

    rounds = 0
    while rounds < max_rounds and not informed.all():
        mask = protocol.transmitters(rounds, informed, network) & informed
        transmissions += int(mask.sum())
        received = network.step(mask)
        fresh = received & ~informed
        rounds += 1
        informed |= fresh
        first_round[fresh] = rounds
        informed_counts.append(int(informed.sum()))

    return BroadcastResult(
        rounds=rounds,
        completed=bool(informed.all()),
        informed_per_round=np.array(informed_counts, dtype=np.int64),
        first_informed_round=first_round,
        transmissions=transmissions,
    )
