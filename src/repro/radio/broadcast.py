"""Broadcast runner: drives a protocol over a radio network and records
everything the experiments need (completion round, per-round progress,
first-informed times).

Two entry points share one engine:

* :func:`run_broadcast_batch` — the trial-vectorized engine.  ``T``
  independent trials advance together, one sparse ``(n, T)`` product per
  round, and come back as a :class:`BatchBroadcastResult` (per-trial
  rounds/completion/energy plus aggregate quantiles).
* :func:`run_broadcast` — the classic single-run API, now the ``T = 1``
  special case of the batch engine.

Seeding contract: ``run_broadcast_batch(..., trials=T, seed=master)``
derives per-trial seeds with :func:`repro._util.spawn_seeds` and is
bit-for-bit identical to ``T`` standalone ``run_broadcast`` calls seeded
with those children — the property the equivalence tests pin down.  The
contract extends to channel models (:mod:`repro.radio.channel`): the
runner resets the active channel with the same per-trial generators right
after the protocol, so randomized channels (erasure) follow the same
counter-based discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import UNSET, as_rng, resolve_seed, spawn_seeds
from repro.graphs.graph import Graph
from repro.radio.channel import ChannelModel
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol, legacy_hooks_specialized

__all__ = [
    "BatchBroadcastResult",
    "BroadcastResult",
    "run_broadcast",
    "run_broadcast_batch",
]


@dataclass(frozen=True)
class BroadcastResult:
    """Trace of one broadcast execution.

    Attributes
    ----------
    rounds:
        Rounds executed (= rounds to full coverage when ``completed``).
    completed:
        Whether every processor was informed before the round cap.
    informed_per_round:
        ``informed_per_round[r]`` = informed count *after* round ``r``
        (index 0 is the state after the first round; the initial state has
        exactly the source informed).
    first_informed_round:
        Per-vertex round at which the vertex first became informed
        (``0`` for the source, ``-1`` if never).
    transmissions:
        Total number of (node, round) transmissions — the energy cost.
    """

    rounds: int
    completed: bool
    informed_per_round: np.ndarray
    first_informed_round: np.ndarray
    transmissions: int

    def rounds_to_fraction(self, fraction: float, total: int | None = None) -> int:
        """First round index (1-based) at which the informed count reaches
        ``fraction`` of ``total`` (default: all vertices); ``-1`` if never."""
        target = fraction * (
            total if total is not None else self.first_informed_round.size
        )
        reached = np.flatnonzero(self.informed_per_round >= target)
        return int(reached[0]) + 1 if reached.size else -1


@dataclass(frozen=True)
class BatchBroadcastResult:
    """Traces of ``T`` independent broadcast trials run as one batch.

    Attributes
    ----------
    trials:
        Number of trials ``T``.
    rounds:
        ``(T,)`` int64 — rounds each trial executed before completing (or
        the round cap for incomplete trials).
    completed:
        ``(T,)`` bool — whether each trial reached full coverage.
    informed_per_round:
        ``(R, T)`` int64 where ``R = rounds.max()``; entry ``[r, t]`` is
        trial ``t``'s informed count after round ``r``.  Rows past a
        trial's completion stay at its final count (``n`` except under
        crash-fault channels, whose coverage excludes dead processors).
    first_informed_round:
        ``(n, T)`` int64 — per-vertex, per-trial first-informed round
        (``0`` for the source, ``-1`` if never).
    transmissions:
        ``(T,)`` int64 — per-trial total (node, round) transmissions.
    """

    trials: int
    rounds: np.ndarray
    completed: np.ndarray
    informed_per_round: np.ndarray
    first_informed_round: np.ndarray
    transmissions: np.ndarray

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that informed everyone."""
        return float(self.completed.mean()) if self.trials else 0.0

    @property
    def mean_rounds(self) -> float:
        """Mean rounds across trials."""
        return float(self.rounds.mean())

    def round_quantiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> np.ndarray:
        """Quantiles of the per-trial round counts (the aggregate view the
        paper's w.h.p. statements call for)."""
        return np.quantile(self.rounds, np.asarray(qs, dtype=float))

    def trial(self, t: int) -> BroadcastResult:
        """Extract trial ``t`` as a standalone :class:`BroadcastResult`."""
        if not 0 <= t < self.trials:
            raise IndexError(f"trial {t} out of range [0, {self.trials})")
        r = int(self.rounds[t])
        return BroadcastResult(
            rounds=r,
            completed=bool(self.completed[t]),
            informed_per_round=self.informed_per_round[:r, t].copy(),
            first_informed_round=self.first_informed_round[:, t].copy(),
            transmissions=int(self.transmissions[t]),
        )


def _default_max_rounds(n: int) -> int:
    return max(1000, 50 * n * max(1, int(np.log2(max(2, n)))))


def run_broadcast_batch(
    graph: Graph,
    protocol: BroadcastProtocol,
    trials: int,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    trial_rngs: Sequence | None = None,
    channel: ChannelModel | None = None,
    rng=UNSET,
) -> BatchBroadcastResult:
    """Run ``trials`` independent broadcasts of ``protocol`` on ``graph``,
    advanced together round by round.

    Per round, the protocol produces an ``(n, T)`` transmit matrix and one
    sparse product applies the channel semantics to every trial at once;
    trials that already completed are frozen (they stop transmitting and
    stop accruing rounds).  The global loop ends when all trials complete
    or the round cap is hit.

    Parameters
    ----------
    seed:
        Master seed/generator; ``trials`` child seeds are derived from it
        via :func:`repro._util.spawn_seeds`, one per trial.  (The old
        ``rng=`` spelling still works but emits a ``DeprecationWarning``.)
    trial_rngs:
        Explicit per-trial seeds/generators (overrides ``seed``) — the hook
        :func:`run_broadcast` uses to be the ``T = 1`` special case.
    channel:
        Reception model (:mod:`repro.radio.channel`); ``None`` means the
        paper's classic collision model.  The runner resets the channel
        with the per-trial generators (after the protocol, so counter keys
        stay aligned with standalone runs), forwards channel feedback to
        the protocol's ``channel_feedback`` hooks, and measures completion
        against the channel's coverage targets (crashed processors are
        not waited for).
    """
    seed = resolve_seed("run_broadcast_batch", seed, rng)
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if trial_rngs is None:
        trial_rngs = [as_rng(s) for s in spawn_seeds(as_rng(seed), trials)]
    else:
        if len(trial_rngs) != trials:
            raise ValueError(
                f"trial_rngs has {len(trial_rngs)} entries for {trials} trials"
            )
        trial_rngs = [as_rng(g) for g in trial_rngs]
    if max_rounds is None:
        max_rounds = _default_max_rounds(graph.n)

    network = RadioNetwork(graph, channel=channel)
    # A protocol whose class specializes the legacy single-run hooks more
    # deeply than the batch hooks (e.g. a DecayProtocol subclass overriding
    # only `transmitters`) must run through the per-trial clone adapter, or
    # its overrides would be silently bypassed by the inherited vectorized
    # path.
    face = (
        BroadcastProtocol if legacy_hooks_specialized(protocol) else
        type(protocol)
    )
    face.reset_batch(protocol, network, source, trial_rngs)
    # Channel after protocol: both may draw per-trial counter keys from the
    # same generators, and standalone runs use the same order.
    network.channel.reset(network, trial_rngs)
    # Crash faults remove processors from the coverage requirement — they
    # can never receive, so waiting for them would always hit the cap.
    targets = network.channel.coverage_targets(network)
    need = graph.n if targets is None else int(np.count_nonzero(targets))

    n, T = graph.n, trials
    first_round = np.full((n, T), -1, dtype=np.int64)
    first_round[source, :] = 0
    completed = np.zeros(T, dtype=bool)
    rounds = np.zeros(T, dtype=np.int64)
    transmissions = np.zeros(T, dtype=np.int64)
    # Per round: (still-active trial ids, their informed counts) — assembled
    # into the dense (R, T) matrix at the end.
    count_log: list[tuple[np.ndarray, np.ndarray]] = []

    # Completed trials are compacted out of the working set, so late rounds
    # (only the slowest trials still running) cost proportionally less —
    # the batch pays the mean trial length, not T times the max.
    active = np.arange(T)
    informed = np.zeros((n, T), dtype=bool)
    informed[source, :] = True
    source_covers = 1 if targets is None or targets[source] else 0
    if source_covers >= need:
        completed[:] = True
        active = active[:0]

    round_index = 0
    while round_index < max_rounds and active.size:
        mask = face.transmitters_batch(protocol, round_index, informed, network)
        mask = mask & informed
        mask = network.channel.effective_transmitters(round_index, mask)
        transmissions[active] += mask.sum(axis=0)
        received = network.step(mask, round_index)
        feedback = network.channel.feedback
        if feedback is not None:
            face.channel_feedback_batch(
                protocol, round_index, feedback, network
            )
        fresh = received & ~informed
        round_index += 1
        rounds[active] += 1
        informed |= fresh
        rows, cols = np.nonzero(fresh)
        first_round[rows, active[cols]] = round_index
        counts = informed.sum(axis=0).astype(np.int64)
        count_log.append((active, counts))
        if targets is None:
            covered = counts
        else:
            covered = informed[targets, :].sum(axis=0).astype(np.int64)
        keep = covered < need
        if not keep.all():
            completed[active[~keep]] = True
            active = active[keep]
            informed = informed[:, keep]
            face.select_trials(protocol, keep)
            network.channel.select_trials(keep)

    # Rows past a trial's completion hold its final informed count (= n for
    # full-coverage channels); holes only appear after a trial leaves the
    # working set, so a running maximum fills them.
    informed_per_round = np.full((round_index, T), -1, dtype=np.int64)
    for r, (idx, counts) in enumerate(count_log):
        informed_per_round[r, idx] = counts
    if round_index:
        np.maximum.accumulate(informed_per_round, axis=0, out=informed_per_round)

    return BatchBroadcastResult(
        trials=T,
        rounds=rounds,
        completed=completed,
        informed_per_round=informed_per_round,
        first_informed_round=first_round,
        transmissions=transmissions,
    )


def run_broadcast(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    channel: ChannelModel | None = None,
    rng=UNSET,
) -> BroadcastResult:
    """Run ``protocol`` on ``graph`` from ``source`` until full coverage or
    ``max_rounds`` (default ``50·n·log₂n``-ish safety cap).

    The runner enforces the radio model: only informed processors may
    transmit, and reception follows the active ``channel`` (default: the
    classic exactly-one-transmitting-neighbour collision model).  This is
    the ``T = 1`` special case of :func:`run_broadcast_batch`; the ``seed``
    seeds the single trial directly (``rng=`` is the deprecated spelling).
    """
    seed = resolve_seed("run_broadcast", seed, rng)
    batch = run_broadcast_batch(
        graph,
        protocol,
        trials=1,
        source=source,
        max_rounds=max_rounds,
        trial_rngs=[as_rng(seed)],
        channel=channel,
    )
    return batch.trial(0)
