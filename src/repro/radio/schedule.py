"""Static broadcast-schedule synthesis from spokesman election.

The paper's stated application (Section 4.2.1): Chlamtac–Weinstein built
centralized broadcast schedules for multihop radio networks by repeatedly
electing spokesmen; replacing their ``|N|/log|S|`` subroutine with this
library's spokesman algorithms yields simpler schedules with the stronger
average-degree guarantee.

The synthesis is the classic cover-by-halving loop.  For one *layer* —
a bipartite ``(S, N)`` with ``S`` informed and ``N`` not — repeat:

1. elect ``S' ⊆ S`` for the sub-instance restricted to the still-uncovered
   part of ``N`` (payoff ``≥ MG(δ)·remaining`` by Corollary A.16);
2. emit ``S'`` as one transmission slot; every right vertex with exactly
   one ``S'``-neighbour is now informed.

Each slot covers at least an ``MG(δ)``-fraction of what remains, so a layer
needs ``O(log γ / MG(δ))`` slots.  Chaining layers along a BFS order of the
whole graph gives a complete static broadcast schedule whose execution on
the collision simulator provably informs everyone — schedules are *data*,
so they can be verified round by round against the radio semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol
from repro.spokesman.base import SpokesmanResult
from repro.spokesman.greedy_add import spokesman_greedy_add

__all__ = [
    "BroadcastSchedule",
    "StaticScheduleProtocol",
    "synthesize_broadcast_schedule",
    "synthesize_layer_schedule",
]


def synthesize_layer_schedule(
    gs: BipartiteGraph,
    algorithm: Callable[[BipartiteGraph], SpokesmanResult] | None = None,
    max_slots: int | None = None,
) -> list[np.ndarray]:
    """Transmission slots (left-vertex id arrays) uniquely covering all
    coverable right vertices of ``gs`` at least once.

    Parameters
    ----------
    algorithm:
        Spokesman subroutine (default: greedy local search; any algorithm
        with an ``Ω(MG(δ))``-fraction guarantee gives the logarithmic slot
        bound).
    max_slots:
        Safety cap; default ``2 + ⌈log γ / MG-floor⌉``-ish generous bound.

    Raises
    ------
    RuntimeError
        If progress stalls before full coverage (cannot happen for correct
        algorithms: a single uncovered right vertex's neighbour is always a
        positive-payoff selection).
    """
    if algorithm is None:
        algorithm = spokesman_greedy_add
    uncovered = gs.right_degrees >= 1
    total = int(uncovered.sum())
    if max_slots is None:
        max_slots = 4 * (2 + int(math.log2(total + 1)) * 8)
    slots: list[np.ndarray] = []
    while uncovered.any():
        if len(slots) >= max_slots:
            raise RuntimeError(
                f"layer schedule exceeded {max_slots} slots with "
                f"{int(uncovered.sum())}/{total} right vertices uncovered"
            )
        sub = gs.restrict_right(uncovered)
        result = algorithm(sub)
        if result.unique_count <= 0:
            raise RuntimeError(
                "spokesman subroutine made no progress on a coverable layer"
            )
        slots.append(result.subset)
        newly = gs.uniquely_covered(result.subset)
        uncovered &= ~newly
    return slots


@dataclass(frozen=True)
class BroadcastSchedule:
    """A static, centrally computed broadcast schedule.

    ``rounds[r]`` is the array of vertex ids transmitting in round ``r``.
    The schedule is graph-specific data; :meth:`verify` replays it against
    the collision semantics and reports whether everyone gets informed.
    """

    source: int
    rounds: tuple[np.ndarray, ...]

    @property
    def length(self) -> int:
        """Number of rounds in the schedule."""
        return len(self.rounds)

    def verify(self, graph: Graph) -> tuple[bool, np.ndarray]:
        """Replay on ``graph``; returns ``(all_informed, informed_mask)``.

        Transmitters that do not yet hold the message stay silent (the
        schedule is still valid if it over-approximates, as long as coverage
        is achieved by informed transmitters).
        """
        net = RadioNetwork(graph)
        informed = np.zeros(graph.n, dtype=bool)
        informed[self.source] = True
        for round_ids in self.rounds:
            mask = np.zeros(graph.n, dtype=bool)
            mask[round_ids] = True
            mask &= informed
            informed |= net.step(mask)
        return bool(informed.all()), informed


class StaticScheduleProtocol(BroadcastProtocol):
    """Adapter: run a :class:`BroadcastSchedule` through the generic
    broadcast runner (for apples-to-apples protocol comparisons)."""

    name = "static-schedule"

    def __init__(self, schedule: BroadcastSchedule) -> None:
        self.schedule = schedule

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        out = np.zeros(network.n, dtype=bool)
        if round_index < self.schedule.length:
            out[self.schedule.rounds[round_index]] = True
        return out & informed


def synthesize_broadcast_schedule(
    graph: Graph,
    source: int = 0,
    algorithm: Callable[[BipartiteGraph], SpokesmanResult] | None = None,
) -> BroadcastSchedule:
    """Full-graph schedule: BFS layers, each covered by repeated spokesman
    election over the boundary bipartite graph of the informed set.

    The graph must be connected.  Total length is
    ``Σ_layers O(log(layer size) / MG(δ_layer))`` rounds — on bounded
    average-degree graphs, ``O(D·log n)`` with a small constant.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")
    dist = graph.bfs_layers(source)
    if (dist < 0).any():
        raise ValueError("schedule synthesis requires a connected graph")

    informed = np.zeros(graph.n, dtype=bool)
    informed[source] = True
    rounds: list[np.ndarray] = []
    depth = int(dist.max())
    for level in range(depth):
        # S = informed vertices at this level's frontier; N = next level.
        frontier = informed.copy()
        gs, left_ids, right_ids = graph.boundary_bipartite(frontier)
        # Restrict to the next BFS level (deeper vertices are covered later).
        next_level_mask = dist[right_ids] == level + 1
        sub = gs.restrict_right(next_level_mask)
        if sub.n_right == 0:
            continue
        for slot in synthesize_layer_schedule(sub, algorithm):
            rounds.append(left_ids[slot])
        informed[dist == level + 1] = True
    return BroadcastSchedule(source=source, rounds=tuple(rounds))
