"""Section 5 experiment drivers: the ``Ω(D·log(n/D))`` broadcast bound.

Three measurable claims:

* **Corollary 5.1** — on the core graph with a root wired to all of ``S``,
  *no* schedule informs more than ``2s`` new ``N``-vertices per round (a
  direct consequence of Lemma 4.4(5)); so reaching a ``2i/log 2s`` fraction
  of ``N`` takes ``≥ 1 + i`` rounds.  :func:`rooted_core_graph` builds the
  instance; the claim is checked against both genie and distributed
  protocols.
* **Observation 5.2** — on the chain, the message reaches portal ``rt_i``
  only after ``rt_{i−1}``; :func:`portal_times` extracts the per-portal
  first-informed rounds from a broadcast trace (they must be increasing).
* **The lower bound itself** — measured broadcast time on the chain grows
  as ``D·log(n/D)`` for every protocol; :func:`measure_chain_broadcast`
  produces one data point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.broadcast_chain import BroadcastChain, broadcast_chain
from repro.graphs.core_graph import core_graph, core_graph_layout
from repro.graphs.graph import Graph
from repro.radio.broadcast import (
    BatchBroadcastResult,
    BroadcastResult,
    run_broadcast,
    run_broadcast_batch,
)
from repro.radio.channel import ChannelModel
from repro.radio.protocols import BroadcastProtocol

__all__ = [
    "BatchChainMeasurement",
    "ChainMeasurement",
    "measure_chain_broadcast",
    "measure_chain_broadcast_batch",
    "portal_times",
    "rooted_core_graph",
]


def rooted_core_graph(s: int) -> tuple[Graph, int, np.ndarray]:
    """The Section 5 gadget: core graph ``G_S`` plus a root ``rt`` adjacent
    to all of ``S``.

    Returns ``(graph, root, n_vertex_ids)`` where ``n_vertex_ids`` are the
    graph ids of the core graph's right side ``N`` (vertex 0 is the root,
    ``1..s`` are ``S``, the rest are ``N``).
    """
    layout = core_graph_layout(s)
    base = core_graph(s)
    edges = base.edges()
    shifted = np.column_stack([edges[:, 0] + 1, edges[:, 1] + 1 + s])
    root_edges = np.column_stack(
        [np.zeros(s, dtype=np.int64), np.arange(1, s + 1, dtype=np.int64)]
    )
    graph = Graph(
        1 + s + layout.n_right, np.concatenate([root_edges, shifted])
    )
    n_ids = np.arange(1 + s, 1 + s + layout.n_right, dtype=np.int64)
    return graph, 0, n_ids


def portal_times(chain: BroadcastChain, result: BroadcastResult) -> np.ndarray:
    """First-informed round of each portal ``rt_i`` (must be increasing by
    Observation 5.2; ``-1`` entries mean the broadcast never got there)."""
    return result.first_informed_round[chain.portals]


@dataclass(frozen=True)
class ChainMeasurement:
    """One data point of the E7 sweep."""

    s: int
    num_layers: int
    n: int
    diameter_claim: int
    rounds: int
    completed: bool
    portal_rounds: np.ndarray

    @property
    def km_bound(self) -> float:
        """The ``D·log₂(n/D)`` yardstick for this instance."""
        d = self.diameter_claim
        return d * np.log2(self.n / d)

    @property
    def per_hop_rounds(self) -> np.ndarray:
        """Rounds between consecutive portal arrivals (the ``R_i`` of the
        paper's proof)."""
        times = self.portal_rounds
        valid = times[times >= 0]
        return np.diff(np.concatenate([[0], valid]))


def measure_chain_broadcast(
    s: int,
    num_layers: int,
    protocol: BroadcastProtocol,
    seed=None,
    chain_seed=None,
    max_rounds: int | None = None,
    channel: ChannelModel | None = None,
) -> ChainMeasurement:
    """Build a chain, broadcast over it, and package the measurement.

    ``seed`` drives the protocol, ``chain_seed`` the chain's portal
    choices; ``channel`` selects the reception model (default: classic
    collision).
    """
    chain = broadcast_chain(s, num_layers, rng=chain_seed)
    result = run_broadcast(
        chain.graph,
        protocol,
        source=chain.root,
        seed=seed,
        max_rounds=max_rounds,
        channel=channel,
    )
    return ChainMeasurement(
        s=s,
        num_layers=num_layers,
        n=chain.graph.n,
        diameter_claim=chain.diameter_claim,
        rounds=result.rounds,
        completed=result.completed,
        portal_rounds=portal_times(chain, result),
    )


@dataclass(frozen=True)
class BatchChainMeasurement:
    """``T`` protocol trials on one shared chain, run as a batch.

    The chain (portal choices) is sampled once from ``chain_seed``; only the
    protocol's randomness varies across trials — the conditional law the
    per-hop concentration statistics average over.
    """

    s: int
    num_layers: int
    n: int
    diameter_claim: int
    trials: int
    rounds: np.ndarray
    completed: np.ndarray
    portal_rounds: np.ndarray

    @property
    def km_bound(self) -> float:
        """The ``D·log₂(n/D)`` yardstick for this instance."""
        d = self.diameter_claim
        return d * np.log2(self.n / d)

    @property
    def per_hop_rounds(self) -> np.ndarray:
        """``(num_layers, T)`` rounds between consecutive portal arrivals
        (the ``R_i`` of the paper's proof), valid for completed trials."""
        return np.diff(self.portal_rounds, axis=0, prepend=0)

    def trial(self, t: int) -> ChainMeasurement:
        """Extract trial ``t`` as a standalone :class:`ChainMeasurement`."""
        if not 0 <= t < self.trials:
            raise IndexError(f"trial {t} out of range [0, {self.trials})")
        return ChainMeasurement(
            s=self.s,
            num_layers=self.num_layers,
            n=self.n,
            diameter_claim=self.diameter_claim,
            rounds=int(self.rounds[t]),
            completed=bool(self.completed[t]),
            portal_rounds=self.portal_rounds[:, t].copy(),
        )


def measure_chain_broadcast_batch(
    s: int,
    num_layers: int,
    protocol: BroadcastProtocol,
    trials: int,
    seed=None,
    chain_seed=None,
    max_rounds: int | None = None,
    channel: ChannelModel | None = None,
) -> BatchChainMeasurement:
    """Build one chain and broadcast ``trials`` independent protocol runs
    over it through the batched engine (one sparse product per round for
    all trials).  ``seed`` is the master seed for the per-trial streams
    and ``chain_seed`` drives the portal choices; ``channel`` selects the
    reception model (default: classic collision).
    """
    chain = broadcast_chain(s, num_layers, rng=chain_seed)
    result: BatchBroadcastResult = run_broadcast_batch(
        chain.graph,
        protocol,
        trials=trials,
        source=chain.root,
        max_rounds=max_rounds,
        seed=seed,
        channel=channel,
    )
    return BatchChainMeasurement(
        s=s,
        num_layers=num_layers,
        n=chain.graph.n,
        diameter_claim=chain.diameter_claim,
        trials=trials,
        rounds=result.rounds,
        completed=result.completed,
        portal_rounds=result.first_informed_round[chain.portals, :],
    )
