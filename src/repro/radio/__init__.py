"""Radio network simulator (Section 1.1 model) and broadcast protocols.

Collision semantics, the Decay protocol, flooding/round-robin baselines, the
centralized spokesman-aided scheduler, and the Section 5 lower-bound
experiment drivers.
"""

from repro.radio.aloha import AlohaProtocol
from repro.radio.broadcast import BroadcastResult, run_broadcast
from repro.radio.hop_analysis import HopTimeStudy, hop_time_study
from repro.radio.lower_bound import (
    ChainMeasurement,
    measure_chain_broadcast,
    portal_times,
    rooted_core_graph,
)
from repro.radio.network import RadioNetwork
from repro.radio.protocols import (
    BroadcastProtocol,
    DecayProtocol,
    FloodingProtocol,
    RoundRobinProtocol,
)
from repro.radio.schedule import (
    BroadcastSchedule,
    StaticScheduleProtocol,
    synthesize_broadcast_schedule,
    synthesize_layer_schedule,
)
from repro.radio.spokesman_broadcast import SpokesmanBroadcastProtocol
from repro.radio.trace import DetailedTrace, RoundRecord, run_broadcast_traced

__all__ = [
    "AlohaProtocol",
    "BroadcastProtocol",
    "BroadcastSchedule",
    "BroadcastResult",
    "ChainMeasurement",
    "DecayProtocol",
    "FloodingProtocol",
    "RadioNetwork",
    "RoundRobinProtocol",
    "SpokesmanBroadcastProtocol",
    "StaticScheduleProtocol",
    "measure_chain_broadcast",
    "portal_times",
    "rooted_core_graph",
    "run_broadcast",
    "synthesize_broadcast_schedule",
    "synthesize_layer_schedule",
    "DetailedTrace",
    "RoundRecord",
    "run_broadcast_traced",
    "HopTimeStudy",
    "hop_time_study",
]
