"""Radio network simulator (Section 1.1 model) and broadcast protocols.

Collision semantics, the Decay protocol, flooding/round-robin baselines, the
centralized spokesman-aided scheduler, and the Section 5 lower-bound
experiment drivers.

The engine is *trial-vectorized*: the paper's positive results are
probabilistic, so experiments need many independent trials per graph, and
:func:`run_broadcast_batch` advances all of them together — one sparse
``(n, T)`` product per round instead of ``T`` Python-loop simulations::

    from repro.graphs import hypercube
    from repro.radio import DecayProtocol, run_broadcast_batch

    batch = run_broadcast_batch(hypercube(10), DecayProtocol(),
                                trials=256, rng=0)
    batch.completion_rate      # fraction of trials that informed everyone
    batch.round_quantiles()    # median / p90 / p99 broadcast time
    batch.trial(7)             # any trial as a plain BroadcastResult

Seeding a batch with a master seed is bit-for-bit equivalent to seeding
``T`` standalone :func:`run_broadcast` calls with the
:func:`repro._util.spawn_seeds` children of that master — batched and
looped experiments are directly comparable.

Reception semantics are pluggable (:mod:`repro.radio.channel`): the
default :class:`ClassicCollision` is the paper's model, and
:class:`CollisionDetection`, :class:`ErasureChannel`, and
:class:`AdversarialJamming` open feedback-, loss-, and fault-model
workloads on the same engine::

    run_broadcast_batch(g, DecayProtocol(), trials=256, rng=0,
                        channel=ErasureChannel(0.2))
"""

from repro.radio.aloha import AlohaProtocol
from repro.radio.broadcast import (
    BatchBroadcastResult,
    BroadcastResult,
    MemoryBudget,
    merge_batches,
    run_broadcast,
    run_broadcast_batch,
)
from repro.radio.channel import (
    CHANNELS,
    AdversarialJamming,
    ChannelModel,
    ChannelSpec,
    ClassicCollision,
    CollisionDetection,
    ErasureChannel,
    FaultSchedule,
    make_channel,
    parse_fault_spec,
)
from repro.radio.hop_analysis import HopTimeStudy, hop_time_study
from repro.radio.lower_bound import (
    BatchChainMeasurement,
    ChainMeasurement,
    measure_chain_broadcast,
    measure_chain_broadcast_batch,
    portal_times,
    rooted_core_graph,
)
from repro.radio.network import RadioNetwork
from repro.radio.protocols import (
    BroadcastProtocol,
    CollisionBackoffProtocol,
    CounterCoinProtocol,
    DecayProtocol,
    FloodingProtocol,
    RoundRobinProtocol,
)
from repro.radio.schedule import (
    BroadcastSchedule,
    StaticScheduleProtocol,
    synthesize_broadcast_schedule,
    synthesize_layer_schedule,
)
from repro.radio.spokesman_broadcast import SpokesmanBroadcastProtocol
from repro.radio.trace import DetailedTrace, RoundRecord, run_broadcast_traced

__all__ = [
    "AlohaProtocol",
    "AdversarialJamming",
    "BatchBroadcastResult",
    "BatchChainMeasurement",
    "BroadcastProtocol",
    "BroadcastSchedule",
    "BroadcastResult",
    "CHANNELS",
    "ChainMeasurement",
    "ChannelModel",
    "ChannelSpec",
    "ClassicCollision",
    "CollisionBackoffProtocol",
    "CollisionDetection",
    "CounterCoinProtocol",
    "DecayProtocol",
    "ErasureChannel",
    "FaultSchedule",
    "FloodingProtocol",
    "MemoryBudget",
    "merge_batches",
    "RadioNetwork",
    "RoundRobinProtocol",
    "make_channel",
    "parse_fault_spec",
    "SpokesmanBroadcastProtocol",
    "StaticScheduleProtocol",
    "measure_chain_broadcast",
    "measure_chain_broadcast_batch",
    "portal_times",
    "rooted_core_graph",
    "run_broadcast",
    "run_broadcast_batch",
    "synthesize_broadcast_schedule",
    "synthesize_layer_schedule",
    "DetailedTrace",
    "RoundRecord",
    "run_broadcast_traced",
    "HopTimeStudy",
    "hop_time_study",
]
