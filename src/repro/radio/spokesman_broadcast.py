"""Centralized spokesman-aided broadcast — the positive results in action.

Each round, the scheduler looks at the informed set ``I``, forms the
boundary bipartite graph ``(S, N)`` with ``S`` = informed vertices that have
uninformed neighbours and ``N = Γ⁻(I)``, runs a spokesman-election algorithm
to pick ``S' ⊆ S``, and lets exactly ``S'`` transmit.  By Theorem 1.1 each
round informs ``≥ βw·|frontier|  = Ω(β/log(2·min{Δ/β, Δβ}))·|frontier|``
new vertices, so a good ordinary expander broadcasts fast *despite*
collisions — while on the Section 4.3 worst-case graphs even this genie is
throttled to a ``2/log 2s`` fraction per round (Corollary 5.1).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol
from repro.spokesman.base import SpokesmanResult
from repro.spokesman.greedy_add import spokesman_greedy_add

__all__ = ["SpokesmanBroadcastProtocol"]


class SpokesmanBroadcastProtocol(BroadcastProtocol):
    """Genie scheduler driven by a spokesman-election algorithm.

    Parameters
    ----------
    algorithm:
        ``callable(BipartiteGraph) -> SpokesmanResult`` choosing the
        transmitting subset each round (default: greedy local search, the
        strongest poly-time choice; pass e.g.
        :func:`repro.spokesman.spokesman_recursive` for the guaranteed one).
    """

    name = "spokesman"

    def __init__(
        self,
        algorithm: Callable[[BipartiteGraph], SpokesmanResult] | None = None,
    ) -> None:
        self.algorithm = algorithm if algorithm is not None else spokesman_greedy_add
        if algorithm is not None and hasattr(algorithm, "__name__"):
            self.name = f"spokesman[{algorithm.__name__}]"

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        graph = network.graph
        uninformed_nbr_counts = graph.neighbor_counts(~informed)
        frontier = informed & (uninformed_nbr_counts >= 1)
        out = np.zeros(network.n, dtype=bool)
        if not frontier.any():
            return out
        gs, left_vertices, _right = graph.boundary_bipartite(informed)
        # Restrict the bipartite left side to the frontier (non-frontier
        # informed vertices have no uninformed neighbours, hence degree 0 in
        # G_S; dropping them changes nothing but keeps instances small).
        frontier_local = np.flatnonzero(frontier[left_vertices])
        sub = gs.restrict_left(frontier_local)
        result = self.algorithm(sub)
        chosen_local = frontier_local[result.subset]
        out[left_vertices[chosen_local]] = True
        return out
