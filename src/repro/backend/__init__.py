"""Pluggable array backends for the dense simulation kernels.

The engine's hot paths — neighbour-count products, channel reception
folds, workload value folds, the expansion pipeline's boundary-mask
mat-mats and lattice gathers — run through an
:class:`~repro.backend.base.ArrayBackend` shim instead of importing
numpy directly.  :data:`HOST` is the always-on numpy backend (its ``xp``
is literally :mod:`numpy`, so host-side code spells ``np = HOST.xp`` and
runs bit-for-bit the pre-backend kernels); accelerator backends are
optional extras resolved by name:

>>> from repro.backend import resolve_backend
>>> resolve_backend(None).name          # the default
'numpy'
>>> resolve_backend("torch").name       # 'torch' when installed,
'...'                                   # numpy + one RuntimeWarning when not

Selection threads through the stack as the ``backend=`` scenario
segment, the CLI's ``--backend`` flag, and ``run_broadcast_batch``'s
``backend=`` keyword; it is serialized only when non-default, so
pre-backend cache keys never move.
"""

from __future__ import annotations

import warnings

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "BACKEND_NAMES",
    "HOST",
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: The always-on host backend (numpy).  A singleton: identity checks like
#: ``backend is HOST`` are valid fast paths.
HOST = NumpyBackend()

#: Names ``backend=`` accepts, mapped to short descriptions (torch is an
#: optional extra; cupy is documented in DESIGN.md as the GPU recipe).
BACKEND_NAMES: dict[str, str] = {
    "numpy": "host numpy (the always-on default; bit-for-bit reference)",
    "torch": "torch tensors, CPU or CUDA (optional extra: repro[torch])",
}


def _build(name: str, device: str | None) -> ArrayBackend:
    if name == "numpy":
        return HOST
    if name == "torch":
        from repro.backend.torch_backend import TorchBackend

        return TorchBackend(device) if device else TorchBackend()
    raise ValueError(
        f"unknown backend {name!r}; known backends: "
        f"{', '.join(sorted(BACKEND_NAMES))}"
    )


def get_backend(name: str) -> ArrayBackend:
    """Build a backend by name, raising :class:`ImportError` when the
    backing library is absent (``resolve_backend`` adds the fallback).

    ``"torch:cuda"``-style suffixes select a device; the bare name is the
    backend's default device.
    """
    key = str(name).strip().lower()
    base, _, device = key.partition(":")
    return _build(base, device or None)


def resolve_backend(spec) -> ArrayBackend:
    """The engine's resolution rule: backend instance, name, or ``None``.

    ``None`` / ``"numpy"`` return the :data:`HOST` singleton.  A named
    accelerator backend whose library is not installed degrades to numpy
    with a single :class:`RuntimeWarning` — runs never fail for lack of
    an optional extra, they just run on the host.
    """
    if spec is None:
        return HOST
    if isinstance(spec, ArrayBackend):
        return spec
    try:
        return get_backend(spec)
    except ImportError as exc:
        warnings.warn(
            f"backend {spec!r} is unavailable ({exc}); falling back to "
            "numpy (install the optional extra, e.g. pip install "
            "'wireless-expanders-repro[torch]')",
            RuntimeWarning,
            stacklevel=2,
        )
        return HOST


def available_backends() -> dict[str, bool]:
    """Which registered backends can actually be built here (the CLI's
    discovery surface and the backend-parametrized suite's skip gate)."""
    out: dict[str, bool] = {}
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
        except ImportError:
            out[name] = False
        else:
            out[name] = True
    return out
