"""The optional torch backend (``pip install repro[torch]``).

Torch tensors run the same dense kernels the numpy path runs, behind the
:class:`~repro.backend.base.ArrayBackend` contract.  Two CPU-torch facts
shape the implementation:

* sparse integer matmul is unsupported, so the adjacency operators embed
  into floats with documented exact-integer bounds — float32 for
  neighbour counts (exact while ``max_degree < 2**24``; every graph the
  repo builds is orders of magnitude below that) and float64 for the
  delivered-value products (exact while values stay below ``2**53``;
  workload values are vertex ids and small prefix counters);
* there is no uint64 dtype, so the packed-bitset engine's word kernels
  cannot be expressed — the bitset engine stays numpy-only by contract
  and the broadcast runner says so when asked otherwise.

Randomness never runs here: the counter-based RNG
(:mod:`repro._util.rng`) draws host-side and the coins transfer in, so a
torch run consumes bit-identical per-trial streams to the numpy run —
which is what makes the seeded statistical-equivalence contracts in
``tests/backend/`` tight.

A cupy backend would follow this file's recipe exactly (cupy has real
integer sparse matmul, so it would skip the float embedding); it is
documented in DESIGN.md rather than shipped because CI has no GPU to
hold it to its contract.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["TorchBackend"]


class _TorchNamespace:
    """A small numpy-flavoured facade over :mod:`torch`.

    Exposes the namespace spellings routed modules use (``zeros``,
    ``nonzero`` returning a tuple, ``flatnonzero``) with tensors created
    on the backend's device.  Everything else resolves to the torch
    module itself via attribute fallthrough.
    """

    def __init__(self, torch, device: str) -> None:
        self._torch = torch
        self._device = device

    def __getattr__(self, name):
        return getattr(self._torch, name)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(shape, dtype=dtype, device=self._device)

    def ones(self, shape, dtype=None):
        return self._torch.ones(shape, dtype=dtype, device=self._device)

    def arange(self, *args, dtype=None):
        return self._torch.arange(*args, dtype=dtype, device=self._device)

    def nonzero(self, array):
        # numpy's tuple-of-index-vectors convention, not torch's (k, ndim).
        return self._torch.nonzero(array, as_tuple=True)

    def flatnonzero(self, array):
        return self._torch.nonzero(array.reshape(-1), as_tuple=True)[0]

    def count_nonzero(self, array):
        return self._torch.count_nonzero(array)


class TorchBackend(ArrayBackend):
    """Torch backend; ``device`` defaults to CPU.

    Raises :class:`ImportError` at construction when torch is not
    installed — :func:`repro.backend.resolve_backend` turns that into the
    documented single-``RuntimeWarning`` numpy fallback.
    """

    name = "torch"
    is_host = False

    def __init__(self, device: str = "cpu") -> None:
        import torch  # the optional extra; ImportError is the fallback signal

        self._torch = torch
        self.device = str(device)
        self.xp = _TorchNamespace(torch, self.device)
        self._dtypes = {
            np.dtype(np.bool_): torch.bool,
            np.dtype(np.int8): torch.int8,
            np.dtype(np.int16): torch.int16,
            np.dtype(np.int32): torch.int32,
            np.dtype(np.int64): torch.int64,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
        }

    def _dtype(self, dtype):
        if isinstance(dtype, self._torch.dtype):
            return dtype
        key = np.dtype(dtype)
        if key not in self._dtypes:
            raise TypeError(f"torch backend has no mapping for dtype {key}")
        return self._dtypes[key]

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def asarray(self, array, dtype=None):
        t = self._torch
        if isinstance(array, t.Tensor):
            out = array if str(array.device) == self.device else array.to(self.device)
        else:
            out = t.as_tensor(np.ascontiguousarray(array), device=self.device)
        if dtype is not None:
            out = out.to(self._dtype(dtype))
        return out

    def to_numpy(self, array):
        if isinstance(array, self._torch.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def astype(self, array, dtype):
        return self.asarray(array).to(self._dtype(dtype))

    # ------------------------------------------------------------------
    # Kernel ops
    # ------------------------------------------------------------------
    def matmul(self, a, b):
        return a @ b

    def take(self, array, indices):
        return self._torch.take(
            self.asarray(array), self.asarray(indices).long()
        )

    def count_nonzero(self, array) -> int:
        return int(self._torch.count_nonzero(self.asarray(array)))

    def where(self, condition, a, b):
        return self._torch.where(condition, a, b)

    def maximum(self, a, b):
        return self._torch.maximum(a, b)

    def ones_like(self, array):
        return self._torch.ones_like(array)

    def is_bool(self, array) -> bool:
        if isinstance(array, self._torch.Tensor):
            return array.dtype == self._torch.bool
        return bool(np.asarray(array).dtype == bool)

    # ------------------------------------------------------------------
    # Adjacency operators
    # ------------------------------------------------------------------
    def _coo(self, graph, dtype):
        """The graph's 0/1 adjacency as a coalesced sparse COO tensor,
        built from the plain-numpy CSR (no scipy materialization)."""
        t = self._torch
        csr = graph.csr
        rows = np.repeat(
            np.arange(csr.n, dtype=np.int64),
            csr.degrees.astype(np.int64),
        )
        cols = csr.indices.astype(np.int64)
        indices = t.as_tensor(
            np.ascontiguousarray(np.stack([rows, cols])), device=self.device
        )
        values = t.ones(cols.shape[0], dtype=dtype, device=self.device)
        return t.sparse_coo_tensor(
            indices, values, (csr.n, csr.n), device=self.device
        ).coalesce()

    def adjacency_operator(self, graph, dtype):
        # CPU torch has no integer sparse matmul: embed into float32,
        # exact while max_degree < 2**24 (the requested narrow host dtype
        # already certifies a far smaller bound).
        return self._coo(graph, self._torch.float32)

    def neighbor_counts(self, operator, transmitting):
        t = self._torch
        dense = self.asarray(transmitting).to(t.float32)
        if dense.ndim == 1:
            return t.sparse.mm(operator, dense[:, None])[:, 0]
        return t.sparse.mm(operator, dense)

    def value_operator(self, graph):
        return self._coo(graph, self._torch.float64)

    def value_matmul(self, operator, values):
        t = self._torch
        dense = self.asarray(values).to(t.float64)
        squeeze = dense.ndim == 1
        if squeeze:
            dense = dense[:, None]
        out = t.sparse.mm(operator, dense).round().to(t.int64)
        return out[:, 0] if squeeze else out

    # ------------------------------------------------------------------
    # Device
    # ------------------------------------------------------------------
    def synchronize(self) -> None:
        if self.device.startswith("cuda"):  # pragma: no cover - no CI GPU
            self._torch.cuda.synchronize()
