"""The always-on host backend: numpy, verbatim.

Every method is the exact expression the engine used before the backend
shim existed — ``asarray``/``to_numpy`` are identity ``np.asarray``
calls, the neighbour-count operator is the scipy CSR cast
``graph.adjacency.astype(count_dtype, copy=False)``, and the value
operator is the raw ``graph.adjacency`` the workload folds always
multiplied by.  That makes the numpy path through the shim bit-for-bit
the pre-backend engine: same objects, same kernels, same dtypes.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host numpy backend — the default everywhere."""

    name = "numpy"
    device = "cpu"
    is_host = True
    xp = np

    def asarray(self, array, dtype=None):
        return np.asarray(array) if dtype is None else np.asarray(array, dtype)

    def to_numpy(self, array):
        return np.asarray(array)

    def astype(self, array, dtype):
        return np.asarray(array).astype(dtype)

    def matmul(self, a, b):
        return a @ b

    def take(self, array, indices):
        return np.take(array, indices)

    def count_nonzero(self, array) -> int:
        return int(np.count_nonzero(array))

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def ones_like(self, array):
        return np.ones_like(array)

    def is_bool(self, array) -> bool:
        return bool(np.asarray(array).dtype == bool)

    def adjacency_operator(self, graph, dtype):
        # The scipy CSR cast the pre-backend RadioNetwork built lazily —
        # copy=False so the int8 common case aliases scipy's own buffers.
        return graph.adjacency.astype(dtype, copy=False)

    def neighbor_counts(self, operator, transmitting):
        return operator @ np.asarray(transmitting).astype(operator.dtype)

    def value_operator(self, graph):
        # The raw int32 scipy CSR: int64 operands upcast the product,
        # exactly as the workload folds always computed it.
        return graph.adjacency

    def value_matmul(self, operator, values):
        return operator @ values
