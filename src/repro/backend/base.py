"""The array-backend contract every routed dense kernel runs through.

An :class:`ArrayBackend` is a thin shim over one array library: a
namespace handle (:attr:`~ArrayBackend.xp`), host transfer
(:meth:`~ArrayBackend.asarray` / :meth:`~ArrayBackend.to_numpy`), the
handful of ops the engine's hot paths actually use (``matmul`` / ``take``
/ ``count_nonzero``-style), and the two adjacency operators behind every
simulation kernel:

* :meth:`~ArrayBackend.neighbor_counts` — the narrow-integer sparse
  product ``counts = A @ transmit`` that every channel's reception rule
  folds (``RadioNetwork.transmit_counts``);
* :meth:`~ArrayBackend.value_matmul` — the exact int64 delivered-value
  product ``A @ (transmitting · values)`` the value workloads and the
  expansion pipeline's boundary-mask extraction build on.

Contract discipline
-------------------
The numpy backend (:class:`repro.backend.numpy_backend.NumpyBackend`) is
the *host* backend: its ``xp`` is literally :mod:`numpy`, its transfer
ops are identity ``np.asarray`` calls, and its operators are the exact
expressions the engine used before the shim existed — so the numpy path
is bit-for-bit the pre-backend engine, with zero new tolerance.

Accelerator backends (torch today, cupy by the same recipe) satisfy a
*statistical* equivalence contract instead: counter-based randomness is
always drawn host-side (``repro._util.rng`` is pure numpy) and
transferred in, so per-trial streams are identical, but floating-point
matmul embeddings may legally differ at the representation level.  The
torch backend's integer embeddings are exact within documented bounds
(float32 counts: ``max_degree < 2**24``; float64 values: ``< 2**53``),
so in practice torch-cpu results are bit-equal too — the
backend-parametrized suite pins both contracts.

Result arrays and the packed-bitset engine are host-resident by
contract: every ``BatchBroadcastResult`` field is a numpy array, and the
bitset kernels (uint64 word tricks numpy owns and torch has no dtype
for) never route through a backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["ArrayBackend"]


class ArrayBackend(ABC):
    """One array library behind the dense simulation kernels."""

    #: Registry name (``"numpy"``, ``"torch"``; what ``backend=`` selects).
    name: str = "abstract"

    #: Where this backend's arrays live (``"cpu"``, ``"cuda"``, ...).
    device: str = "cpu"

    #: True only for the numpy host backend: transfer ops are identity,
    #: arrays are numpy arrays, and host-only code (the bitset engine,
    #: scipy structures) may consume them directly.
    is_host: bool = False

    #: The backend's array namespace: :mod:`numpy` itself on the host
    #: backend, a numpy-flavoured facade over the library elsewhere.
    xp: Any = None

    @property
    def spec(self) -> str:
        """The registry string that rebuilds this backend via
        :func:`repro.backend.get_backend` — picklable where live backend
        handles (which hold library modules) are not."""
        return self.name if self.device == "cpu" else f"{self.name}:{self.device}"

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    @abstractmethod
    def asarray(self, array, dtype=None):
        """Move a (host or backend) array onto this backend.

        Host backend: identity ``np.asarray``.  Accelerators: a device
        transfer (no-op for arrays already resident).  ``dtype`` uses the
        *numpy* dtype vocabulary; backends map it through their dtype
        table.
        """

    @abstractmethod
    def to_numpy(self, array):
        """Move a backend array back to host numpy (identity on host)."""

    def astype(self, array, dtype):
        """Backend array cast, numpy dtype vocabulary."""
        return self.asarray(array, dtype=dtype)

    # ------------------------------------------------------------------
    # The kernel ops the routed hot paths actually use
    # ------------------------------------------------------------------
    @abstractmethod
    def matmul(self, a, b):
        """Dense ``a @ b`` on backend arrays."""

    @abstractmethod
    def take(self, array, indices):
        """Flat gather ``array.ravel()[indices]`` (``np.take`` semantics) —
        the subset-lattice DP's weight-table lookup."""

    @abstractmethod
    def count_nonzero(self, array) -> int:
        """Number of nonzero entries, as a Python int."""

    @abstractmethod
    def where(self, condition, a, b):
        """Elementwise select — the masked-fold primitive value workloads
        use in place of numpy's ``out=/where=`` in-place forms."""

    @abstractmethod
    def maximum(self, a, b):
        """Elementwise maximum."""

    @abstractmethod
    def ones_like(self, array):
        """An all-ones array matching ``array``'s shape and dtype."""

    def is_bool(self, array) -> bool:
        """Whether ``array`` is a boolean array of this backend."""
        return bool(getattr(array, "dtype", None) == bool)

    # ------------------------------------------------------------------
    # Adjacency operators (the two sparse kernels behind everything)
    # ------------------------------------------------------------------
    @abstractmethod
    def adjacency_operator(self, graph, dtype):
        """A backend-resident operator for the neighbour-count product.

        ``dtype`` is the host count dtype
        (:func:`repro._util.dtypes.count_dtype_for_degree`); backends
        without narrow-integer matmul may embed into a wider exact type
        and must document the exactness bound.
        """

    @abstractmethod
    def neighbor_counts(self, operator, transmitting):
        """``operator @ transmitting`` — per-vertex transmitting-neighbour
        counts for one trial vector or an ``(n, T)`` trial matrix."""

    @abstractmethod
    def value_operator(self, graph):
        """A backend-resident operator for exact int64 delivered-value
        products (``A @ (transmitting · values)``)."""

    @abstractmethod
    def value_matmul(self, operator, values):
        """``operator @ values`` with exact int64 results (backends using
        a float embedding must stay within its exact-integer range)."""

    # ------------------------------------------------------------------
    # Device
    # ------------------------------------------------------------------
    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on host) —
        what the benches call around timed regions."""

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"<{type(self).__name__} name={self.name!r} device={self.device!r}>"
