"""A stdlib ``urllib`` client for the experiment service API.

:class:`ServiceClient` is what the CLI verbs (``repro submit``,
``repro jobs``) and the tests drive the HTTP surface with — one small
class so the wire format lives in exactly two files (here and
:mod:`repro.service.api`).  Error responses raise :class:`ServiceError`
carrying the HTTP status and the server's JSON body, whose ``error``
field is the same eager-validation message the CLI prints for a bad
``--scenario``.

The stream endpoint's server-sent events arrive over chunked transfer
encoding; ``http.client`` de-chunks transparently, so
:meth:`ServiceClient.stream` just parses ``event:``/``data:`` lines off
the response and yields ``(kind, payload)`` pairs until the terminal
event closes the stream.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """An HTTP error response from the service, with its JSON body."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = int(status)
        self.payload = payload if payload is not None else {}


class ServiceClient:
    """Talk to one service at ``base_url`` (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, body: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode())
            except (ValueError, UnicodeDecodeError):
                payload = {"error": raw.decode(errors="replace")}
            raise ServiceError(
                payload.get("error", f"HTTP {exc.code}"),
                status=exc.code,
                payload=payload,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc.reason}") from None

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        with self._open(method, path, body) as response:
            return json.loads(response.read().decode())

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(self, spec: str) -> tuple[dict, bool]:
        """Submit a scenario spec; returns ``(job, created)``.  An invalid
        spec raises :class:`ServiceError` with the validation message."""
        payload = self._request("POST", "/jobs", {"spec": spec})
        return payload["job"], bool(payload["created"])

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self, state: str | None = None) -> list[dict]:
        path = "/jobs" if state is None else f"/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def stream(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[tuple[str, dict]]:
        """Yield ``(kind, payload)`` for each server-sent event of a job,
        replaying history then tailing until a terminal event (``done`` /
        ``failed`` / ``cancelled``) or the server-side ``timeout``."""
        path = f"/jobs/{job_id}/stream"
        if timeout is not None:
            path += f"?timeout={timeout}"
        with self._open("GET", path) as response:
            kind, data_lines = None, []
            for raw in response:
                line = raw.decode().rstrip("\r\n")
                if line.startswith("event:"):
                    kind = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                elif not line and kind is not None:
                    yield kind, json.loads("\n".join(data_lines) or "{}")
                    kind, data_lines = None, []

    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']!r} after {timeout}s"
                )
            time.sleep(poll)
