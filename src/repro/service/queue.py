"""Persistent job queue: the service's SQLite-backed source of truth.

One :class:`JobQueue` wraps one SQLite database file (WAL mode, so the
API server and a pool of worker processes read and write it
concurrently).  The schema is versioned in a ``meta`` table and upgraded
by tiny forward-only migrations at open — an old queue file is always
usable, never rewritten wholesale.

Job identity is content-addressed: the job id is a prefix of
:func:`repro.runtime.store.scenario_key` over the submitted spec's
canonical dict, so submitting a spec-equal scenario twice — any spelling,
any client — dedupes to the same row (the second submission simply
returns the first job, whatever state it has reached).  Resubmitting a
``failed`` or ``cancelled`` job re-queues it in place.

State machine::

    queued ──lease──▶ running ──finish──▶ done | failed
      ▲                  │
      └── lease expiry ──┘        (cancel: queued/running ──▶ cancelled)

Leases make worker death survivable: a worker claims a job with a
time-limited lease and must heartbeat (extending it) as it checkpoints
trial shards; a job whose lease lapses is re-leasable by any worker, up
to ``max_attempts``, after which it is failed with a lease-expiry error.

Every mutation appends to an ``events`` table (per-job, monotonically
numbered) — the stream the API's SSE endpoint replays and tails.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import METRICS
from repro.obs.tracing import maybe_span

__all__ = [
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "SCHEMA_VERSION",
    "TERMINAL_STATES",
]

#: Default queue database, relative to the invoking process's working
#: directory (``repro serve --queue`` and :class:`JobQueue` override it).
DEFAULT_QUEUE_PATH = os.path.join("results", "service", "jobs.db")

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves on its own (resubmission re-queues the last
#: two; ``done`` is final because the result is in the store).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Length of the scenario-key prefix used as the public job id.  64 bits
#: of content address — short enough to type, collision-free at any
#: plausible queue size (and a collision would be a spec-equal job
#: anyway for all but astronomically unlucky pairs).
_ID_LEN = 16

# ---------------------------------------------------------------------------
# Schema migrations: append-only.  Each entry upgrades from its index
# version to index+1; a fresh database replays all of them in order.
# NEVER edit an existing migration — add a new one.
# ---------------------------------------------------------------------------
_MIGRATIONS: tuple[tuple[str, ...], ...] = (
    # v0 -> v1: the original jobs + events tables.
    (
        """
        CREATE TABLE jobs (
            id            TEXT PRIMARY KEY,
            scenario_key  TEXT NOT NULL UNIQUE,
            spec          TEXT NOT NULL,
            state         TEXT NOT NULL,
            submitted_at  REAL NOT NULL,
            started_at    REAL,
            finished_at   REAL,
            attempts      INTEGER NOT NULL DEFAULT 0,
            worker        TEXT,
            lease_expires REAL,
            error         TEXT,
            progress_done INTEGER NOT NULL DEFAULT 0,
            progress_total INTEGER NOT NULL DEFAULT 0
        )
        """,
        """
        CREATE TABLE events (
            job_id  TEXT NOT NULL,
            seq     INTEGER NOT NULL,
            ts      REAL NOT NULL,
            kind    TEXT NOT NULL,
            payload TEXT NOT NULL,
            PRIMARY KEY (job_id, seq)
        )
        """,
        "CREATE INDEX idx_jobs_state ON jobs (state, submitted_at)",
    ),
    # v1 -> v2: record whether completion was a pure cache replay (the
    # warm-resubmission observability the load bench and CI assert on).
    (
        "ALTER TABLE jobs ADD COLUMN cache_hit INTEGER NOT NULL DEFAULT 0",
    ),
)

#: Current schema version — the number of migrations applied.
SCHEMA_VERSION = len(_MIGRATIONS)


@dataclass(frozen=True)
class JobRecord:
    """One row of the jobs table, as plain immutable data."""

    id: str
    scenario_key: str
    spec: str
    state: str
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    attempts: int
    worker: str | None
    lease_expires: float | None
    error: str | None
    progress_done: int
    progress_total: int
    cache_hit: bool

    def to_dict(self) -> dict:
        """The wire form ``GET /jobs/<id>`` returns."""
        return {
            "id": self.id,
            "scenario_key": self.scenario_key,
            "spec": self.spec,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "progress_done": self.progress_done,
            "progress_total": self.progress_total,
            "cache_hit": bool(self.cache_hit),
        }


_ROW_FIELDS = (
    "id, scenario_key, spec, state, submitted_at, started_at, finished_at, "
    "attempts, worker, lease_expires, error, progress_done, progress_total, "
    "cache_hit"
)


def _record(row: sqlite3.Row | tuple) -> JobRecord:
    return JobRecord(
        id=row[0],
        scenario_key=row[1],
        spec=row[2],
        state=row[3],
        submitted_at=row[4],
        started_at=row[5],
        finished_at=row[6],
        attempts=int(row[7]),
        worker=row[8],
        lease_expires=row[9],
        error=row[10],
        progress_done=int(row[11]),
        progress_total=int(row[12]),
        cache_hit=bool(row[13]),
    )


class JobQueue:
    """The persistent job store over one SQLite file.

    Safe for concurrent multi-process use: WAL journaling keeps readers
    off the writers' lock, every mutation runs in an ``IMMEDIATE``
    transaction (write lock taken up front, so check-then-update
    sequences are atomic), and a busy timeout makes short lock collisions
    waits instead of errors.  Each method opens its own short-lived
    connection — no shared handle to corrupt across ``fork``.

    ``salt`` feeds :func:`~repro.runtime.store.scenario_key`; leave it
    ``None`` so queue ids and result-store keys agree (both then follow
    the package-version salt and ``REPRO_CACHE_SALT``).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        salt: str | None = None,
        max_attempts: int = 3,
        busy_timeout: float = 10.0,
    ):
        from repro.runtime.store import code_salt

        self.path = os.path.abspath(
            os.fspath(path) if path is not None else DEFAULT_QUEUE_PATH
        )
        self.salt = code_salt() if salt is None else str(salt)
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self.busy_timeout = float(busy_timeout)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._migrate()

    # ------------------------------------------------------------------
    # Connections and schema
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(self.path, timeout=self.busy_timeout)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        con.execute(f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
        return con

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One write transaction; the lock is taken before the body runs."""
        con = self._connect()
        try:
            con.execute("BEGIN IMMEDIATE")
            yield con
            con.commit()
        except BaseException:
            con.rollback()
            raise
        finally:
            con.close()

    def _migrate(self) -> None:
        """Bring the database to :data:`SCHEMA_VERSION`, forward only."""
        with self._tx() as con:
            con.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = con.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            version = int(row[0]) if row else 0
            if version > SCHEMA_VERSION:
                raise RuntimeError(
                    f"queue {self.path} has schema version {version}, newer "
                    f"than this code's {SCHEMA_VERSION}; upgrade the package "
                    "(migrations are forward-only)"
                )
            for target in range(version, SCHEMA_VERSION):
                for statement in _MIGRATIONS[target]:
                    con.execute(statement)
            con.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (str(SCHEMA_VERSION),),
            )

    def schema_version(self) -> int:
        """The on-disk schema version (equals :data:`SCHEMA_VERSION` after
        any successful open)."""
        con = self._connect()
        try:
            row = con.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            return int(row[0]) if row else 0
        finally:
            con.close()

    # ------------------------------------------------------------------
    # Submission (idempotent by scenario key)
    # ------------------------------------------------------------------
    def job_identity(self, scenario) -> tuple[str, str]:
        """``(job_id, scenario_key)`` for a spec — pure, no database I/O."""
        from repro.runtime.store import scenario_key

        key = scenario_key(scenario, salt=self.salt)
        return key[:_ID_LEN], key

    def submit(self, scenario) -> tuple[JobRecord, bool]:
        """Enqueue a :class:`~repro.scenario.spec.Scenario` (or spec
        string / canonical dict); returns ``(record, created)``.

        Idempotent: a spec-equal job already ``queued``/``running``/
        ``done`` is returned as-is (``created=False``); a ``failed`` or
        ``cancelled`` one is re-queued in place.  Spec validation happens
        here (``from_string`` is eager), so a bad spec raises
        ``ValueError`` before anything touches the database — the API
        maps that to a structured 400.
        """
        from repro.scenario.tasks import _as_scenario

        sc = _as_scenario(scenario).validate()
        spec = sc.describe()
        job_id, key = self.job_identity(sc)
        now = time.time()
        with maybe_span("service.submit", job=job_id), self._tx() as con:
            row = con.execute(
                f"SELECT {_ROW_FIELDS} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                con.execute(
                    "INSERT INTO jobs (id, scenario_key, spec, state, "
                    "submitted_at) VALUES (?, ?, ?, 'queued', ?)",
                    (job_id, key, spec, now),
                )
                self._append_event(
                    con, job_id, "submitted", {"spec": spec}, ts=now
                )
                METRICS.incr("service.jobs.submitted")
                record = self._get(con, job_id)
                return record, True
            record = _record(row)
            if record.state in ("failed", "cancelled"):
                con.execute(
                    "UPDATE jobs SET state='queued', submitted_at=?, "
                    "started_at=NULL, finished_at=NULL, attempts=0, "
                    "worker=NULL, lease_expires=NULL, error=NULL, "
                    "progress_done=0, cache_hit=0 WHERE id=?",
                    (now, job_id),
                )
                self._append_event(
                    con, job_id, "resubmitted",
                    {"spec": spec, "previous_state": record.state}, ts=now,
                )
                METRICS.incr("service.jobs.resubmitted")
                return self._get(con, job_id), False
            METRICS.incr("service.jobs.deduped")
            return record, False

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _get(self, con: sqlite3.Connection, job_id: str) -> JobRecord:
        row = con.execute(
            f"SELECT {_ROW_FIELDS} FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(job_id)
        return _record(row)

    def get(self, job_id: str) -> JobRecord:
        """The job row, or ``KeyError`` for an unknown id."""
        con = self._connect()
        try:
            return self._get(con, job_id)
        finally:
            con.close()

    def list(self, state: str | None = None) -> list[JobRecord]:
        """All jobs (optionally one state), newest submission first."""
        if state is not None and state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {state!r}; known: {', '.join(JOB_STATES)}"
            )
        con = self._connect()
        try:
            if state is None:
                rows = con.execute(
                    f"SELECT {_ROW_FIELDS} FROM jobs ORDER BY submitted_at DESC"
                ).fetchall()
            else:
                rows = con.execute(
                    f"SELECT {_ROW_FIELDS} FROM jobs WHERE state=? "
                    "ORDER BY submitted_at DESC",
                    (state,),
                ).fetchall()
            return [_record(r) for r in rows]
        finally:
            con.close()

    def counts(self) -> dict[str, int]:
        """Job counts by state (all states present, zeros included)."""
        con = self._connect()
        try:
            rows = con.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        finally:
            con.close()
        out = {state: 0 for state in JOB_STATES}
        out.update({state: int(count) for state, count in rows})
        return out

    def depth(self) -> int:
        """Jobs waiting or in flight — the ``/healthz`` queue depth."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # ------------------------------------------------------------------
    # Leasing (the worker side of the state machine)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str, ttl: float, now: float | None = None):
        """Claim the oldest runnable job for ``worker_id``; ``None`` when
        the queue is idle.

        Runnable means ``queued``, or ``running`` with an expired lease
        (the previous worker died) — the re-queue path.  Each claim
        increments ``attempts``; a stale job that already burned
        ``max_attempts`` is failed instead of handed out again.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        now = time.time() if now is None else float(now)
        with maybe_span("service.lease", worker=worker_id), self._tx() as con:
            while True:
                row = con.execute(
                    f"SELECT {_ROW_FIELDS} FROM jobs WHERE state='queued' "
                    "OR (state='running' AND lease_expires < ?) "
                    "ORDER BY submitted_at LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    return None
                record = _record(row)
                expired = record.state == "running"
                if expired:
                    METRICS.incr("service.leases.expired")
                    self._append_event(
                        con, record.id, "lease_expired",
                        {"worker": record.worker, "attempts": record.attempts},
                        ts=now,
                    )
                if record.attempts >= self.max_attempts:
                    error = (
                        f"lease expired after {record.attempts} attempts "
                        f"(max_attempts={self.max_attempts})"
                    )
                    con.execute(
                        "UPDATE jobs SET state='failed', finished_at=?, "
                        "worker=NULL, lease_expires=NULL, error=? WHERE id=?",
                        (now, error, record.id),
                    )
                    self._append_event(
                        con, record.id, "failed", {"error": error}, ts=now
                    )
                    METRICS.incr("service.jobs.failed")
                    continue
                con.execute(
                    "UPDATE jobs SET state='running', worker=?, "
                    "lease_expires=?, attempts=attempts + 1, "
                    "started_at=COALESCE(started_at, ?) WHERE id=?",
                    (worker_id, now + ttl, now, record.id),
                )
                self._append_event(
                    con, record.id, "leased",
                    {"worker": worker_id, "attempt": record.attempts + 1,
                     "requeued": expired},
                    ts=now,
                )
                METRICS.incr("service.leases.granted")
                return self._get(con, record.id)

    def heartbeat(
        self,
        job_id: str,
        worker_id: str,
        ttl: float,
        progress_done: int | None = None,
        progress_total: int | None = None,
        now: float | None = None,
    ) -> bool:
        """Extend the lease (and optionally record shard progress).

        Returns ``False`` when the worker no longer owns the job — it was
        cancelled, re-leased after an expiry, or finished elsewhere — in
        which case the worker must abandon it mid-flight.
        """
        now = time.time() if now is None else float(now)
        sets = ["lease_expires=?"]
        params: list[Any] = [now + ttl]
        if progress_done is not None:
            sets.append("progress_done=?")
            params.append(int(progress_done))
        if progress_total is not None:
            sets.append("progress_total=?")
            params.append(int(progress_total))
        params += [job_id, worker_id]
        with self._tx() as con:
            cur = con.execute(
                f"UPDATE jobs SET {', '.join(sets)} "
                "WHERE id=? AND worker=? AND state='running'",
                params,
            )
            return cur.rowcount == 1

    def finish(
        self,
        job_id: str,
        worker_id: str,
        error: str | None = None,
        cache_hit: bool = False,
        now: float | None = None,
    ) -> bool:
        """Complete a leased job — ``done``, or ``failed`` with ``error``.

        Ownership-checked like :meth:`heartbeat`: a worker that lost its
        lease cannot overwrite another worker's result (returns ``False``).
        """
        now = time.time() if now is None else float(now)
        state = "done" if error is None else "failed"
        with self._tx() as con:
            cur = con.execute(
                "UPDATE jobs SET state=?, finished_at=?, error=?, "
                "lease_expires=NULL, cache_hit=? "
                "WHERE id=? AND worker=? AND state='running'",
                (state, now, error, int(bool(cache_hit)), job_id, worker_id),
            )
            if cur.rowcount != 1:
                return False
            payload: dict[str, Any] = {"worker": worker_id}
            if error is not None:
                payload["error"] = error
            if cache_hit:
                payload["cache_hit"] = True
            self._append_event(con, job_id, state, payload, ts=now)
        METRICS.incr(f"service.jobs.{state}")
        return True

    def cancel(self, job_id: str, now: float | None = None) -> bool:
        """Cancel a ``queued``/``running`` job; ``False`` if already
        terminal.  A running job's worker notices at its next heartbeat
        (which fails) and abandons the execution; completed shard
        checkpoints stay in the store for a future resubmission."""
        now = time.time() if now is None else float(now)
        with self._tx() as con:
            self._get(con, job_id)  # unknown ids raise KeyError
            cur = con.execute(
                "UPDATE jobs SET state='cancelled', finished_at=?, "
                "worker=NULL, lease_expires=NULL "
                "WHERE id=? AND state IN ('queued', 'running')",
                (now, job_id),
            )
            if cur.rowcount != 1:
                return False
            self._append_event(con, job_id, "cancelled", {}, ts=now)
        METRICS.incr("service.jobs.cancelled")
        return True

    # ------------------------------------------------------------------
    # Events (the stream the SSE endpoint tails)
    # ------------------------------------------------------------------
    def _append_event(
        self,
        con: sqlite3.Connection,
        job_id: str,
        kind: str,
        payload: dict,
        ts: float,
    ) -> None:
        con.execute(
            "INSERT INTO events (job_id, seq, ts, kind, payload) VALUES "
            "(?, COALESCE((SELECT MAX(seq) FROM events WHERE job_id=?), -1) + 1, "
            "?, ?, ?)",
            (job_id, job_id, ts, kind, json.dumps(payload, sort_keys=True)),
        )

    def append_event(self, job_id: str, kind: str, payload: dict) -> None:
        """Record a job event (workers stream shard completions here)."""
        with self._tx() as con:
            self._append_event(con, job_id, kind, payload, ts=time.time())

    def events_since(
        self, job_id: str, after_seq: int = -1
    ) -> list[tuple[int, float, str, dict]]:
        """Events strictly after ``after_seq`` as ``(seq, ts, kind,
        payload)``, in order — the polling primitive behind the stream."""
        con = self._connect()
        try:
            rows = con.execute(
                "SELECT seq, ts, kind, payload FROM events "
                "WHERE job_id=? AND seq > ? ORDER BY seq",
                (job_id, int(after_seq)),
            ).fetchall()
        finally:
            con.close()
        return [
            (int(seq), float(ts), kind, json.loads(payload))
            for seq, ts, kind, payload in rows
        ]
