"""Workers: lease jobs, execute scenarios, checkpoint per trial-shard.

A :class:`Worker` polls one :class:`~repro.service.queue.JobQueue`,
claims jobs under a heartbeated lease, and executes each submitted
:class:`~repro.scenario.spec.Scenario` through the existing runtime:

* the **full result** is looked up first under
  :meth:`~repro.runtime.store.ResultStore.scenario_key` — a spec-equal
  job that already ran (here, in a sweep, or via ``Scenario.run``)
  completes as a pure cache replay, no recompute;
* a cold job is split into contiguous **trial shards** (the exact
  per-trial seed children the serial engine would derive, so the merged
  result is bit-for-bit the uninterrupted run) and each shard's
  :class:`~repro.radio.broadcast.BatchBroadcastResult` is checkpointed
  into the store under a content address of ``(scenario, shard)``.  A
  worker killed mid-job loses at most the in-flight shard: when the
  lease expires and another worker re-claims the job, completed shards
  replay from the store and execution resumes where it stopped;
* after each shard the worker **heartbeats** (extending the lease and
  recording trial progress) and appends a ``shard`` event carrying the
  partial batch summary — the stream ``GET /jobs/<id>/stream`` relays.

:class:`WorkerPool` runs N workers as daemon processes — the pool behind
``repro serve --workers N``.
"""

from __future__ import annotations

import os
import time
import uuid
from typing import Sequence

from repro._util import as_rng, spawn_seeds
from repro.obs.metrics import METRICS
from repro.obs.tracing import maybe_span
from repro.service.queue import JobQueue, JobRecord

__all__ = [
    "DEFAULT_SHARD_TRIALS",
    "JobLost",
    "Worker",
    "WorkerPool",
    "shard_checkpoint_key",
    "shard_plan",
]

#: Trials per checkpoint shard.  Small enough that a killed worker loses
#: little and the stream ticks visibly; large enough that per-shard
#: store/heartbeat overhead stays negligible against the engine.  Every
#: worker must use one value per queue — checkpoint addresses include the
#: shard layout, so a changed value simply recomputes (never corrupts).
DEFAULT_SHARD_TRIALS = 16


class JobLost(Exception):
    """The worker no longer owns its job (cancelled or lease re-claimed);
    execution is abandoned without touching the job row."""


def shard_plan(scenario, shard_trials: int = DEFAULT_SHARD_TRIALS) -> list[list[int]]:
    """Contiguous per-shard trial-seed chunks for ``scenario``.

    The seeds are the exact children the serial engine derives
    (``spawn_seeds(protocol_seed, trials)``), chunked in order — the same
    anchoring :func:`~repro.scenario.tasks.run_scenario_sharded` uses, so
    ``merge_batches`` over the shards reproduces the unsharded run bit
    for bit regardless of where shard boundaries fall.
    """
    if shard_trials < 1:
        raise ValueError(f"shard_trials must be >= 1, got {shard_trials}")
    protocol_seed, _ = scenario.seeds
    trial_seeds = spawn_seeds(as_rng(protocol_seed), scenario.trials)
    return [
        [int(s) for s in trial_seeds[i : i + shard_trials]]
        for i in range(0, scenario.trials, shard_trials)
    ]


def shard_checkpoint_key(store, scenario, index: int, total: int, seeds: Sequence[int]) -> str:
    """Content address of one shard checkpoint: the scenario's canonical
    dict plus the shard's position and exact trial seeds, under the
    store's salt (so checkpoints retire with every other cache entry)."""
    return store.key(
        "repro.service.worker.scenario_shard",
        {"scenario": scenario.to_dict(), "shard": int(index), "shards": int(total)},
        seeds,
    )


def _batch_summary(result) -> dict:
    """The plain-JSON partial/final summary shard and result events carry."""
    return {
        "trials": int(result.trials),
        "mean_rounds": float(sum(int(r) for r in result.rounds) / result.trials),
        "completion_rate": float(result.completion_rate),
    }


class Worker:
    """One job executor over a queue and a result store.

    ``queue`` / ``store`` accept live instances or paths (each worker
    process builds its own connections either way).  ``lease_ttl`` must
    comfortably exceed one shard's compute time — the lease is renewed at
    every shard boundary; size shards (``shard_trials``) down before
    sizing the ttl up.
    """

    def __init__(
        self,
        queue: JobQueue | str | os.PathLike,
        store=None,
        worker_id: str | None = None,
        lease_ttl: float = 60.0,
        poll_interval: float = 0.2,
        shard_trials: int = DEFAULT_SHARD_TRIALS,
    ):
        from repro.runtime.executor import as_store

        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        self.store = as_store(store)
        # Workers are exactly the writers that get killed mid-put; starting
        # one is the natural moment to reap predecessors' stale temp files.
        self.store.sweep_tmp()
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        if shard_trials < 1:
            raise ValueError(f"shard_trials must be >= 1, got {shard_trials}")
        self.shard_trials = int(shard_trials)
        #: Test hook: called after each computed/resumed shard with
        #: ``(record, shard_index, shard_count)``.  Raising a
        #: ``BaseException`` here (e.g. ``KeyboardInterrupt``) simulates a
        #: worker dying mid-job — the job stays leased until expiry.
        self.after_shard = None
        self.jobs_done = 0

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_once(self) -> str | None:
        """Lease and execute at most one job; returns its id, or ``None``
        when the queue had nothing runnable."""
        record = self.queue.lease(self.worker_id, self.lease_ttl)
        if record is None:
            return None
        self.execute(record)
        return record.id

    def run(
        self, max_jobs: int | None = None, idle_timeout: float | None = None
    ) -> int:
        """Process jobs until ``max_jobs`` are done or the queue stays
        idle for ``idle_timeout`` seconds (``None`` = run forever);
        returns the number of jobs executed."""
        executed = 0
        idle_since: float | None = None
        while max_jobs is None or executed < max_jobs:
            job_id = self.run_once()
            if job_id is not None:
                executed += 1
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                break
            time.sleep(self.poll_interval)
        return executed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, record: JobRecord) -> None:
        """Run one leased job to ``done``/``failed``.

        Engine/validation errors fail the job with the exception message;
        :class:`JobLost` abandons it silently (another owner took over);
        ``BaseException`` (kill/interrupt) propagates with the job still
        leased — exactly the crash the lease protocol exists to survive.
        """
        try:
            with maybe_span("service.execute", job=record.id):
                result, cache_hit = self._execute(record)
        except JobLost:
            METRICS.incr("service.jobs.lost")
            return
        except Exception as exc:
            self.queue.finish(record.id, self.worker_id, error=str(exc))
            return
        summary = _batch_summary(result)
        summary["cache_hit"] = cache_hit
        self.queue.append_event(record.id, "result", summary)
        if self.queue.finish(record.id, self.worker_id, cache_hit=cache_hit):
            self.jobs_done += 1

    def _execute(self, record: JobRecord):
        from repro.radio.broadcast import merge_batches
        from repro.scenario.spec import Scenario
        from repro.scenario.tasks import run_scenario_shard

        scenario = Scenario.from_string(record.spec)
        result_key = self.store.scenario_key(scenario)
        try:
            result = self.store.get(result_key)
        except KeyError:
            pass
        else:
            # Warm job: the whole submission is a cache replay.
            METRICS.incr("service.jobs.cache_hits")
            self.queue.heartbeat(
                record.id, self.worker_id, self.lease_ttl,
                progress_done=scenario.trials, progress_total=scenario.trials,
            )
            return result, True

        plan = shard_plan(scenario, self.shard_trials)
        total = len(plan)
        if not self.queue.heartbeat(
            record.id, self.worker_id, self.lease_ttl,
            progress_done=0, progress_total=scenario.trials,
        ):
            raise JobLost(record.id)
        parts = []
        trials_done = 0
        for index, seeds in enumerate(plan):
            ckpt_key = shard_checkpoint_key(
                self.store, scenario, index, total, seeds
            )
            try:
                part = self.store.get(ckpt_key)
                resumed = True
                METRICS.incr("service.shards.resumed")
            except KeyError:
                with maybe_span(
                    "service.shard", job=record.id, shard=index, shards=total
                ):
                    part = run_scenario_shard(scenario, seeds)
                self.store.put(ckpt_key, part)
                resumed = False
                METRICS.incr("service.shards.computed")
            parts.append(part)
            trials_done += len(seeds)
            if not self.queue.heartbeat(
                record.id, self.worker_id, self.lease_ttl,
                progress_done=trials_done, progress_total=scenario.trials,
            ):
                raise JobLost(record.id)
            self.queue.append_event(
                record.id, "shard",
                {
                    **_batch_summary(part),
                    "shard": index + 1,
                    "shards": total,
                    "trials_done": trials_done,
                    "trials": scenario.trials,
                    "resumed": resumed,
                },
            )
            if self.after_shard is not None:
                self.after_shard(record, index, total)
        result = merge_batches(parts)
        self.store.put(result_key, result, meta={"scenario": record.spec})
        # The final result subsumes the checkpoints; reclaim the space.
        self.store.drop(
            shard_checkpoint_key(self.store, scenario, i, total, seeds)
            for i, seeds in enumerate(plan)
        )
        return result, False


def _worker_main(
    queue_path: str,
    cache_root: str | None,
    lease_ttl: float,
    poll_interval: float,
    shard_trials: int,
) -> None:
    """Module-level pool-process entry point (picklable under spawn)."""
    Worker(
        queue_path,
        store=cache_root,
        lease_ttl=lease_ttl,
        poll_interval=poll_interval,
        shard_trials=shard_trials,
    ).run()


class WorkerPool:
    """N workers as daemon processes over one queue file.

    Each process opens its own SQLite connections and result store —
    nothing is shared but the files, which is the whole concurrency
    story.  ``stop()`` terminates the processes; any in-flight job's
    lease expires and the next worker resumes it from its checkpoints.
    """

    def __init__(
        self,
        queue_path: str | os.PathLike,
        cache_root: str | os.PathLike | None = None,
        workers: int = 1,
        lease_ttl: float = 60.0,
        poll_interval: float = 0.2,
        shard_trials: int = DEFAULT_SHARD_TRIALS,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue_path = os.fspath(queue_path)
        self.cache_root = None if cache_root is None else os.fspath(cache_root)
        self.workers = int(workers)
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        self.shard_trials = int(shard_trials)
        self._processes: list = []

    def start(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        for _ in range(self.workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    self.queue_path,
                    self.cache_root,
                    self.lease_ttl,
                    self.poll_interval,
                    self.shard_trials,
                ),
                daemon=True,
            )
            proc.start()
            self._processes.append(proc)

    def alive(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def stop(self, timeout: float = 5.0) -> None:
        for proc in self._processes:
            if proc.is_alive():
                proc.terminate()
        for proc in self._processes:
            proc.join(timeout)
        self._processes.clear()

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
