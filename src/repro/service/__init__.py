"""repro.service — the experiment service: queue, workers, streaming API.

The bridge from runtime library to serving system.  A submitted job is a
:class:`~repro.scenario.spec.Scenario` spec string on the wire; the
service persists it, executes it through the existing
:class:`~repro.runtime.executor.ParallelExecutor`-era machinery
(:func:`~repro.scenario.tasks.run_scenario_shard` +
:class:`~repro.runtime.store.ResultStore`), and streams partial results
back as trial shards complete:

* :mod:`repro.service.queue` — :class:`JobQueue`, a SQLite-backed (WAL)
  persistent job store with schema-versioned forward-only migrations,
  ``queued → running → done/failed`` states, lease-based ownership, and
  idempotent submission keyed by
  :meth:`~repro.runtime.store.ResultStore.scenario_key` (spec-equal
  submissions dedupe to one row);
* :mod:`repro.service.worker` — :class:`Worker` / :class:`WorkerPool`,
  lease-heartbeat job executors that checkpoint per trial-shard into the
  result store, so a killed worker resumes instead of restarting and
  warm-cache jobs complete without recompute;
* :mod:`repro.service.api` — a stdlib-only ``http.server`` HTTP/JSON API
  (``POST /jobs``, ``GET /jobs/<id>``, SSE ``GET /jobs/<id>/stream``,
  ``/healthz``, ``/metrics``);
* :mod:`repro.service.client` — the matching stdlib ``urllib`` client
  the CLI verbs (``repro serve`` / ``repro submit`` / ``repro jobs``)
  and the tests drive the API with.

Quickstart::

    repro serve --port 8642 --workers 2 &
    repro submit "margulis(8) | decay | erasure(0.1) | gossip(k=16)"
"""

from repro.service.api import DEFAULT_HOST, DEFAULT_PORT, ServiceServer, create_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import (
    JOB_STATES,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
    SCHEMA_VERSION,
)
from repro.service.worker import DEFAULT_SHARD_TRIALS, Worker, WorkerPool

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SHARD_TRIALS",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "SCHEMA_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "TERMINAL_STATES",
    "Worker",
    "WorkerPool",
    "create_server",
]
