"""The HTTP/JSON surface of the experiment service — stdlib only.

A :class:`ServiceServer` (``http.server.ThreadingHTTPServer``) exposes
one :class:`~repro.service.queue.JobQueue`:

``POST /jobs``
    Submit a scenario.  Body: ``{"spec": "<spec string>"}`` (or the raw
    spec as ``text/plain``).  Validation is eager and structured: an
    invalid spec returns ``400`` with a JSON body whose ``error`` field
    carries the exact message the CLI prints (``duplicate channel
    segment ...``, ``trials must be >= 1 ...``).  Submission is
    idempotent — a spec-equal job returns the existing row with
    ``created: false`` (status 200 instead of 201).
``GET /jobs`` / ``GET /jobs/<id>``
    List (optionally ``?state=queued``) / inspect jobs.
``GET /jobs/<id>/stream``
    Server-sent events over chunked transfer encoding: replays the job's
    event log, then tails it — ``shard`` events as trial shards complete,
    a ``result`` summary, and a terminal ``done``/``failed``/``cancelled``
    event, after which the stream closes.  ``?timeout=S`` bounds the tail.
``POST /jobs/<id>/cancel``
    Cancel a queued/running job.
``GET /healthz``
    Liveness plus queue depth.
``GET /metrics``
    The process-wide :data:`~repro.obs.metrics.METRICS` registry, job
    counts by state, queue throughput (jobs/sec since start), and — when
    the server runs under a :func:`~repro.obs.tracing.recording` — its
    trace-span summary.  Worker processes keep their own registries;
    queue-level truth (counts, progress) always comes from SQLite.

Everything is JSON over ``Content-Length``-framed responses except the
stream, which is chunked.  No third-party dependencies anywhere.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import METRICS
from repro.obs.tracing import active_recorder, maybe_span, summarize_events
from repro.service.queue import JOB_STATES, TERMINAL_STATES, JobQueue

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServiceServer", "create_server"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: How often the stream endpoint polls the events table while tailing.
_STREAM_POLL_SECONDS = 0.1

#: Default tail bound for ``GET /jobs/<id>/stream`` (override: ``?timeout=``).
_STREAM_TIMEOUT_SECONDS = 300.0


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server, carrying the queue every handler thread shares.

    :class:`~repro.service.queue.JobQueue` opens a fresh SQLite
    connection per operation, so one instance is safe across handler
    threads.  ``allow_reuse_address`` keeps quick restarts from tripping
    on TIME_WAIT sockets.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, queue: JobQueue, quiet: bool = True):
        super().__init__(address, _ServiceHandler)
        self.queue = queue
        self.quiet = quiet
        self.started_at = time.time()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def create_server(
    queue: JobQueue | str | None = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
) -> ServiceServer:
    """A ready-to-``serve_forever`` server (``port=0`` picks an ephemeral
    port — the tests' and the bench's entry point)."""
    if not isinstance(queue, JobQueue):
        queue = JobQueue(queue)
    return ServiceServer((host, port), queue, quiet=quiet)


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # ------------------------------------------------------------------
    # Framing helpers
    # ------------------------------------------------------------------
    def _json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra) -> None:
        self._json(status, {"error": message, **extra})

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    @property
    def _queue(self) -> JobQueue:
        return self.server.queue

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._get_healthz()
            elif parts == ["metrics"]:
                self._get_metrics()
            elif parts == ["jobs"]:
                self._get_jobs(parse_qs(url.query))
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1])
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "stream":
                self._stream_job(parts[1], parse_qs(url.query))
            else:
                self._error(404, f"no such resource {url.path!r}")
        except KeyError as exc:
            self._error(404, f"no such job {exc.args[0]!r}")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._post_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._post_cancel(parts[1])
            else:
                self._error(404, f"no such resource {url.path!r}")
        except KeyError as exc:
            self._error(404, f"no such job {exc.args[0]!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _read_spec(self) -> str:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        text = body.strip()
        if text.startswith("{"):
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"request body is not valid JSON: {exc}") from None
            if not isinstance(payload, dict) or "spec" not in payload:
                raise ValueError('JSON body must carry a "spec" field')
            spec = payload["spec"]
            if not isinstance(spec, str):
                raise ValueError(
                    f'"spec" must be a spec string, got {type(spec).__name__}'
                )
            return spec
        if not text:
            raise ValueError(
                'empty submission; send {"spec": "<scenario>"} or a raw spec string'
            )
        return text

    def _post_job(self) -> None:
        try:
            spec = self._read_spec()
        except ValueError as exc:
            self._error(400, str(exc))
            return
        with maybe_span("service.api.submit"):
            try:
                record, created = self._queue.submit(spec)
            except (ValueError, TypeError) as exc:
                # The structured error surface: the same eager-validation
                # message the CLI prints, as a machine-readable body.
                self._error(400, str(exc), spec=spec)
                return
        self._json(
            201 if created else 200,
            {"job": record.to_dict(), "created": created},
        )

    def _post_cancel(self, job_id: str) -> None:
        cancelled = self._queue.cancel(job_id)
        self._json(
            200,
            {"cancelled": cancelled, "job": self._queue.get(job_id).to_dict()},
        )

    def _get_jobs(self, query: dict) -> None:
        state = query.get("state", [None])[0]
        try:
            records = self._queue.list(state)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._json(200, {"jobs": [r.to_dict() for r in records]})

    def _get_job(self, job_id: str) -> None:
        self._json(200, {"job": self._queue.get(job_id).to_dict()})

    def _get_healthz(self) -> None:
        self._json(
            200,
            {
                "ok": True,
                "queue_depth": self._queue.depth(),
                "queue": self._queue.path,
            },
        )

    def _get_metrics(self) -> None:
        counts = self._queue.counts()
        uptime = max(time.time() - self.server.started_at, 1e-9)
        payload: dict = {
            "counters": METRICS.snapshot(),
            "jobs": counts,
            "queue_depth": counts["queued"] + counts["running"],
            "uptime_seconds": uptime,
            "jobs_per_second": counts["done"] / uptime,
        }
        rec = active_recorder()
        if rec is not None:
            payload["spans"] = summarize_events(rec.events).get("spans", {})
        self._json(200, payload)

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------
    def _chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

    def _sse(self, kind: str, payload: dict) -> None:
        self._chunk(
            f"event: {kind}\ndata: {json.dumps(payload, sort_keys=True)}\n\n".encode()
        )

    def _stream_job(self, job_id: str, query: dict) -> None:
        record = self._queue.get(job_id)  # 404 before committing to a stream
        try:
            timeout = float(query.get("timeout", [_STREAM_TIMEOUT_SECONDS])[0])
        except ValueError:
            self._error(400, f"bad timeout {query['timeout'][0]!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        deadline = time.monotonic() + timeout
        last_seq = -1
        terminal = False
        with maybe_span("service.api.stream", job=job_id):
            while not terminal:
                for seq, ts, kind, payload in self._queue.events_since(
                    job_id, last_seq
                ):
                    last_seq = seq
                    self._sse(kind, {"seq": seq, "ts": ts, "job": job_id, **payload})
                    if kind in TERMINAL_STATES:
                        terminal = True
                if terminal:
                    break
                if time.monotonic() >= deadline:
                    self._sse(
                        "timeout",
                        {"job": job_id, "state": self._queue.get(job_id).state},
                    )
                    break
                time.sleep(_STREAM_POLL_SECONDS)
        self.wfile.write(b"0\r\n\r\n")
        METRICS.incr("service.streams.served")


# The states a stream treats as end-of-job are exactly the queue's
# terminal states; keep the import above honest under linting.
assert set(TERMINAL_STATES) <= set(JOB_STATES)
