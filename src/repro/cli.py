"""Command-line experiment runner: ``python -m repro <command>``.

Thin orchestration over the library — each subcommand prints one of the
reproduction tables (the benchmark suite regenerates all of them at once;
the CLI is for interactive exploration of single experiments).

Commands
--------
``core``        Lemma 4.4 property sheet over a size sweep.
``gbad``        Lemma 3.3 / Remark 1 table over a (Δ, β) grid.
``spokesman``   Algorithm shoot-out on a chosen instance.
``broadcast``   Section 5 chain scaling against D·log2(n/D).
``hops``        Per-hop timing distribution (concentration check).
``worstcase``   Corollary 4.11 planted bad set.
``channels``    Broadcast degradation across channel/fault models (E15).
``expansion``   Batched wireless-expansion estimation (βw) of a
                scenario's graph, cached and executor-sharded (E17).
``run``         Regenerate a registered experiment (E1–E21) via its bench.
``sweep``       Cached, resumable scenario grid sweep (runtime demo).
``trace``       Per-round collision telemetry of one scenario (E20's
                anatomy view): transmitters, receptions, victims, wasted.
``obs``         Observability: ``summary`` aggregates a ``--trace-out``
                JSONL file (span totals, task latency, cache hit rate).
``cache``       Inspect (``stats``) or wipe (``clear``) the result cache.
``scenarios``   Discover the spec registries (``list``) or inspect one
                scenario's string/dict/key forms (``show``).
``workloads``   Discover the workload registry (``list``) or inspect one
                workload's signature and engine support (``show``).
``serve``       Run the experiment service: the HTTP/JSON API plus a
                local worker pool over the persistent job queue.
``submit``      Submit a scenario spec to a running service and stream
                shard progress (server-sent events) until completion.
``jobs``        Inspect the service queue: ``list``, ``show``,
                ``cancel``.

Every simulation verb routes through the declarative scenario layer
(:mod:`repro.scenario`) and shares one spec builder: ``--scenario SPEC``
replaces the verb's default configuration with a spec string (or preset
name — see ``repro scenarios list``), and repeatable ``-S key=value``
overrides tweak individual fields::

    repro broadcast --scenario "chain(8, 4) | decay | erasure(0.1)" -S trials=64
    repro hops -S channel=cd -S protocol=collision-backoff
    repro sweep --scenario sweep-smoke -S seed=3 --resume

Simulation commands also uniformly take ``--seed`` (master seed) and
``--jobs`` (worker processes; tasks are farmed through
:class:`repro.runtime.ParallelExecutor`, with results bit-for-bit identical
to serial runs).  The legacy ``--channel`` / ``--erasure-p`` / ``--faults``
flags remain as spelling sugar for ``-S channel=...``.

``run``, ``sweep``, ``expansion``, and ``trace`` take ``--trace-out FILE``:
the whole command executes under a :func:`repro.obs.tracing.recording`
whose spans, cache counters, and telemetry events land in ``FILE`` as JSON
Lines — ``repro obs summary FILE`` aggregates them.
"""

from __future__ import annotations

import argparse
import math
import sys

__all__ = ["build_parser", "main"]


def _cmd_core(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.graphs import (
        core_graph,
        core_graph_max_unique_coverage,
        core_graph_min_expansion,
    )

    rows = []
    for s in args.sizes:
        g = core_graph(s)
        exp, _, _ = core_graph_min_expansion(s)
        cap = core_graph_max_unique_coverage(s)
        rows.append(
            [s, g.n_right, int(g.left_degrees[0]), round(g.avg_right_degree, 2),
             exp, cap, round(cap / g.n_right, 4)]
        )
    print(render_table(
        ["s", "|N|", "deg_S", "avg_deg_N", "min_expansion", "max_unique", "fraction"],
        rows, title="Lemma 4.4 core graph"))
    return 0


def _cmd_gbad(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.expansion import (
        bipartite_unique_expansion_exact,
        max_unique_coverage_exact,
    )
    from repro.graphs import gbad, gbad_wireless_lower_bound

    rows = []
    for delta in args.deltas:
        for beta in range((delta + 1) // 2, delta + 1):
            g = gbad(args.s, delta, beta)
            bu, _ = bipartite_unique_expansion_exact(g)
            best, _ = max_unique_coverage_exact(g)
            rows.append(
                [delta, beta, round(bu, 3), 2 * beta - delta,
                 round(best / args.s, 3),
                 round(gbad_wireless_lower_bound(delta, beta), 3)]
            )
    print(render_table(
        ["Δ", "β", "βu exact", "2β-Δ", "βw exact", "remark bound"],
        rows, title=f"Lemma 3.3 Gbad (s={args.s})"))
    return 0


def _cmd_spokesman(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.graphs import core_graph, gbad, random_bipartite
    from repro.spokesman import spokesman_exact, spokesman_portfolio

    if args.instance == "core":
        gs = core_graph(args.s)
    elif args.instance == "gbad":
        gs = gbad(args.s, 6, 4)
    else:
        gs = random_bipartite(args.s, 3 * args.s, 0.25, rng=args.seed)
    best, results = spokesman_portfolio(gs, rng=args.seed)
    rows = [
        [name, r.unique_count, round(r.unique_fraction, 3), r.subset.size]
        for name, r in sorted(results.items())
    ]
    if gs.n_left <= 20:
        opt = spokesman_exact(gs)
        rows.append(["EXACT", opt.unique_count,
                     round(opt.unique_fraction, 3), opt.subset.size])
    print(render_table(
        ["algorithm", "unique", "fraction", "|S'|"], rows,
        title=f"spokesman election on {args.instance}({args.s})"))
    return 0


def _channel_spec(args: argparse.Namespace):
    """Fresh-channel factory from the CLI channel flags.

    A :class:`repro.radio.ChannelSpec` rather than a closure: channels hold
    per-run state, so every run gets its own instance, and the spec is
    picklable / content-addressable so ``--jobs`` and the result cache work.
    """
    from repro.radio import ChannelSpec

    return ChannelSpec(
        name=getattr(args, "channel", "classic"),
        erasure_p=getattr(args, "erasure_p", 0.1),
        faults=getattr(args, "faults", None),
    )


def _parse_overrides(args: argparse.Namespace) -> dict:
    """The ``-S key=value`` list as an override mapping."""
    out: dict[str, str] = {}
    for item in getattr(args, "scenario_set", []) or []:
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SystemExit(f"bad -S override {item!r} (expected key=value)")
        out[key] = value.strip()
    return out


def _resolve_scenario(args: argparse.Namespace, default):
    """The verb's base scenario: ``--scenario`` (spec string or preset
    name) over the legacy-flag ``default``, with ``-S`` overrides applied.

    Returns ``(scenario, overrides)`` — callers use the overrides to honour
    ``-S seed=...`` as the sweep's master seed.
    """
    from repro.scenario import get_scenario

    base = default
    if getattr(args, "scenario", None):
        try:
            base = get_scenario(args.scenario)
        except (KeyError, ValueError, TypeError) as exc:
            raise SystemExit(f"bad --scenario: {exc}") from None
    # Explicit flags override a --scenario-baked value (their parser
    # defaults are None so explicitness is observable); -S still wins.
    flags: dict[str, object] = {}
    if getattr(args, "trials", None) is not None:
        flags["trials"] = args.trials
    if getattr(args, "engine", None) is not None:
        flags["engine"] = args.engine
    if getattr(args, "memory_budget", None) is not None:
        flags["memory_budget"] = args.memory_budget
    if getattr(args, "backend", None) is not None:
        flags["backend"] = args.backend
    if flags:
        try:
            base = base.with_overrides(flags)
        except (KeyError, ValueError, TypeError) as exc:
            raise SystemExit(f"bad flag value: {exc}") from None
    overrides = _parse_overrides(args)
    if overrides:
        try:
            base = base.with_overrides(overrides)
        except (KeyError, ValueError, TypeError) as exc:
            raise SystemExit(f"bad -S override: {exc}") from None
    try:
        # Fail fast on out-of-domain component parameters (a bad -S
        # graph=... would otherwise only surface at build time, mid-sweep).
        base.validate()
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad scenario: {exc}") from None
    return base, overrides


def _channel_label(args: argparse.Namespace, base, overrides) -> str:
    """What the table header calls the channel: the legacy flag's spelling
    when it chose the channel, the spec's canonical form otherwise."""
    if (
        hasattr(args, "channel")
        and not getattr(args, "scenario", None)
        and not any(k == "channel" or k.startswith("channel.") for k in overrides)
    ):
        return args.channel
    return base.channel.describe()


def _seed(args: argparse.Namespace) -> int:
    """The --seed value (its parser default is None so explicitness is
    observable; unset means 0)."""
    value = getattr(args, "seed", None)
    return 0 if value is None else value


def _trials(args: argparse.Namespace, default: int) -> int:
    """The --trials value (its parser default is None so an explicit flag
    can override a --scenario-baked trial count); unset means the verb's
    own default."""
    value = getattr(args, "trials", None)
    return default if value is None else value


def _graph_overridden(args: argparse.Namespace, overrides) -> bool:
    """Whether --scenario or a -S graph override chose the graph (so the
    verb must not rebuild its legacy graph grid over it)."""
    return bool(getattr(args, "scenario", None)) or any(
        k == "graph" or k.startswith("graph.") for k in overrides
    )


def _master_seed(args: argparse.Namespace, base, overrides) -> int:
    """The repetition-deriving master seed: ``-S seed=`` wins, then an
    explicit ``--seed``, then a seed baked into ``--scenario``."""
    if "seed" in overrides:
        return base.seed
    if getattr(args, "seed", None) is not None:
        return args.seed
    return base.seed


def _chain_rows(points_iter):
    """Table rows for scenario summaries: the chain family's rich columns
    when its meta is present, a generic scenario table otherwise.

    Returns ``(headers, rows, fit_xy)``; ``fit_xy`` is the
    (km_bound, mean) series for the log-linear fit, empty for non-chain
    scenarios.
    """
    from repro.analysis import summarize

    headers = None
    rows, xs, ys = [], [], []
    for first, rounds, completed in points_iter:
        stats = summarize(rounds)
        if "km_bound" in first:
            headers = ["layers", "n", "D", "D·log2(n/D)", "mean", "min", "max"]
            xs.append(first["km_bound"])
            ys.append(stats.mean)
            rows.append(
                [first["layers"], first["n"], first["diameter"],
                 round(first["km_bound"], 1),
                 round(stats.mean, 1), stats.min, stats.max])
        else:
            headers = ["scenario", "n", "mean", "min", "max", "completion"]
            rows.append(
                [first["scenario"], first["n"], round(stats.mean, 1),
                 stats.min, stats.max,
                 round(sum(completed) / len(completed), 3)])
    return headers, rows, (xs, ys)


def _executor(args: argparse.Namespace):
    """The runtime executor behind ``--jobs`` (``None`` = inline serial)."""
    if getattr(args, "jobs", 1) > 1:
        from repro.runtime import ParallelExecutor

        return ParallelExecutor(args.jobs)
    return None


def _add_exec_flags(p: "argparse.ArgumentParser", seed: bool = True) -> None:
    """The uniform ``--seed`` / ``--jobs`` pair every simulation command
    takes (``REPRO_JOBS`` sets the ``--jobs`` default)."""
    from repro.runtime import default_jobs

    if seed:
        # Default None (treated as 0) so an explicit --seed is
        # distinguishable from the default when --scenario bakes a seed.
        p.add_argument("--seed", type=int, default=None,
                       help="master seed (default 0)")
    p.add_argument(
        "--jobs", type=int, default=default_jobs(fallback=1),
        help="worker processes (>1 schedules via repro.runtime)")


def _add_channel_flags(p: "argparse.ArgumentParser") -> None:
    from repro.radio import CHANNELS

    p.add_argument(
        "--channel", choices=sorted(CHANNELS) + ["cd"], default="classic",
        help="reception model (cd = collision-detection); "
             "sugar for -S channel=...")
    p.add_argument(
        "--erasure-p", type=float, default=0.1,
        help="drop probability for --channel erasure")
    p.add_argument(
        "--faults", type=str, default=None,
        help="fault spec for --channel jamming, e.g. 'jam@0-9:0,1;crash@5:7'")


def _add_scenario_flags(p: "argparse.ArgumentParser") -> None:
    """The uniform declarative-spec pair shared by every simulation verb."""
    p.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="scenario spec string or preset name replacing this verb's "
             "default configuration, e.g. 'chain(8, 4) | decay | "
             "erasure(0.1)' (see `repro scenarios list`)")
    p.add_argument(
        "-S", "--set", dest="scenario_set", action="append", default=[],
        metavar="KEY=VALUE",
        help="scenario field override (repeatable): graph/protocol/channel/"
             "workload/trials/seed/source/max_rounds/engine/memory_budget/"
             "telemetry/backend or dotted spec fields such as "
             "channel.erasure_p; "
             "e.g. -S workload='gossip(k=4)' or -S telemetry=on")
    p.add_argument(
        "--engine", choices=["auto", "dense", "bitset"], default=None,
        help="simulation backend: dense (sparse mat-mat counts), bitset "
             "(packed-word CSR gathers; large-n memory-lean path), or auto "
             "(default); sugar for -S engine=...")
    p.add_argument(
        "--memory-budget", dest="memory_budget", default=None,
        metavar="BYTES",
        help="peak working-set budget — trials are sharded into column "
             "chunks that fit, e.g. '2GiB' or '512MiB'; sugar for "
             "-S memory_budget=...")
    p.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the dense engine: numpy (default) or torch, "
             "optionally with a device suffix such as torch:cuda; falls "
             "back to numpy with a warning when the library is missing; "
             "sugar for -S backend=...")


def _rep_groups(points, reps: int):
    """Regroup a grid-major ``SweepPoint`` list into its grid points.

    Yields ``(first_result, rounds, completed)`` per grid point —
    ``rounds``/``completed`` flattened across the point's repetitions —
    for the chain-broadcast tables (`broadcast`, `sweep`).
    """
    for i in range(0, len(points), reps):
        group = points[i : i + reps]
        yield (
            group[0].result,
            [r for pt in group for r in pt.result["rounds"]],
            [c for pt in group for c in pt.result["completed"]],
        )


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.analysis import fit_loglinear, render_table, run_sweep
    from repro.scenario import GraphSpec, Scenario

    default = Scenario(
        graph=GraphSpec.make("chain", args.s, args.layers[0]),
        channel=_channel_spec(args),
        trials=_trials(args, 1),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    # Legacy grid mode sweeps --layers over chain graphs; an explicit
    # --scenario (or -S graph=...) runs exactly that spec (--reps
    # independent repetitions).
    if _graph_overridden(args, overrides):
        grid: dict = {}
    else:
        grid = {
            "graph": [GraphSpec.make("chain", args.s, l) for l in args.layers]
        }
    # One scenario task per (grid point, rep); --jobs farms the pickled
    # specs across processes (bit-for-bit identical to serial).
    points = run_sweep(
        grid,
        scenario=base,
        seed=_master_seed(args, base, overrides),
        repetitions=args.reps,
        executor=_executor(args),
    )
    headers, rows, (xs, ys) = _chain_rows(_rep_groups(points, args.reps))
    proto = base.protocol.describe().capitalize()
    title = (
        f"Section 5: {proto} rounds on chained cores"
        if not _graph_overridden(args, overrides)
        else f"scenario broadcast: {proto} rounds"
    )
    # Name the task when it is not the default single-source broadcast.
    if base.workload.to_dict() != {"name": "broadcast"}:
        title = f"{title} [workload={base.workload.describe()}]"
    print(render_table(
        headers, rows,
        title=f"{title} [channel={_channel_label(args, base, overrides)}]"))
    if len(xs) >= 2:
        fit = fit_loglinear(xs, ys)
        print(f"fit: rounds ≈ {fit.slope:.2f}·bound {fit.intercept:+.1f}"
              f" (R²={fit.r_squared:.3f})")
    return 0


def _cmd_hops(args: argparse.Namespace) -> int:
    from repro.radio.hop_analysis import hop_time_study
    from repro.scenario import GraphSpec, Scenario

    default = Scenario(
        graph=GraphSpec.make("chain", args.s, args.layers[0]),
        channel=_channel_spec(args),
        trials=_trials(args, 1),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    if base.graph.family != "chain" or len(base.graph.args) < 2:
        raise SystemExit(
            "repro hops needs a chain(s, layers) scenario (per-hop timing "
            f"is defined on the Section 5 chain); got {base.graph.describe()!r}"
        )
    try:
        study = hop_time_study(
            scenario=base,
            repetitions=args.reps * base.trials,
            seed=_master_seed(args, base, overrides),
            executor=_executor(args))
    except ValueError as exc:
        raise SystemExit(f"bad scenario for repro hops: {exc}") from None
    print(f"hop study: s={study.s}, layers={study.num_layers}, "
          f"reps={study.hop_times.shape[0]}, "
          f"channel={_channel_label(args, base, overrides)}")
    print(f"  per-hop rounds: mean {study.hop_mean:.2f} ± {study.hop_std:.2f}"
          f"  (log2(2s) = {math.log2(2 * study.s):.1f})")
    print(f"  total relative spread: {study.total_relative_spread:.3f}")
    print(f"  lag-1 hop autocorrelation: {study.hop_autocorrelation():+.3f}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.analysis import run_sweep, summarize
    from repro.graphs import random_regular
    from repro.radio import synthesize_broadcast_schedule
    from repro.runtime.tasks import broadcast_rounds_point
    from repro.scenario import GraphSpec

    # Deterministic families travel as specs (the scenario-routed task
    # path); the randomized one is built once here so the synthesized
    # schedule and the Decay comparison see the same instance.
    if args.graph == "hypercube":
        gspec = GraphSpec.make("hypercube", args.size)
    elif args.graph == "grid":
        gspec = GraphSpec.make("grid", args.size)
    else:
        gspec = None
    if gspec is not None:
        g = gspec.build().graph
    else:
        g = random_regular(2**args.size, 6, rng=_seed(args))
    schedule = synthesize_broadcast_schedule(g, source=0)
    ok, informed = schedule.verify(g)
    # The randomized comparison: --reps independent Decay runs, scheduled
    # through the runtime so --jobs parallelizes them.
    points = run_sweep(
        {}, broadcast_rounds_point, seed=_seed(args), repetitions=args.reps,
        static_params={"graph": gspec if gspec is not None else g,
                       "source": 0},
        executor=_executor(args))
    rounds = [r for pt in points for r in pt.result["rounds"]]
    print(f"graph: {args.graph}({args.size}) n={g.n}")
    print(f"  schedule length {schedule.length} rounds "
          f"(eccentricity {g.eccentricity(0)}), verified: {ok}")
    if len(rounds) == 1:
        print(f"  Decay (distributed, randomized): {rounds[0]} rounds")
    else:
        stats = summarize(rounds)
        print(f"  Decay (distributed, randomized): mean {stats.mean:.1f} "
              f"rounds over {len(rounds)} runs "
              f"(min {int(stats.min)}, max {int(stats.max)})")
    return 0 if ok else 1


def _cmd_channels(args: argparse.Namespace) -> int:
    from repro.analysis import ERASURE_HEADERS, erasure_degradation, render_table
    from repro.scenario import GraphSpec, Scenario

    default = Scenario(
        graph=GraphSpec.make("random_regular", args.n, args.delta),
        trials=_trials(args, 32),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    if base.channel.to_dict() != {"name": "classic"}:
        raise SystemExit(
            "repro channels sweeps erasure rates itself (--erasure-ps); a "
            "scenario channel override would be silently ignored — drop it"
        )
    # Family pair under test: the scenario's graph (the expander by
    # default) against the Section 5 chain of comparable size — both as
    # specs, so every measurement is a pickled, cacheable Scenario.
    customized = _graph_overridden(args, overrides)
    families = [
        (base.graph.family if customized else "expander", base.graph),
        ("chain", GraphSpec.make(
            "chain", args.s, max(2, args.n // (3 * args.s)))),
    ]
    # Shared E15 row definition (repro.analysis.robustness): slowdowns are
    # against a classic-channel baseline, independent of --erasure-ps order.
    points = erasure_degradation(
        families, args.erasure_ps, trials=base.trials,
        seed=_master_seed(args, base, overrides),
        max_rounds=base.max_rounds,
        protocol=base.protocol, executor=_executor(args))
    print(render_table(
        ERASURE_HEADERS, [pt.row for pt in points],
        title="E15: broadcast degradation under erasure"))
    return 0


def _cmd_expansion(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.expansion.spec import ExpansionSpec
    from repro.runtime import ResultStore
    from repro.scenario import GraphSpec, Scenario
    from repro.scenario.tasks import expansion_summary

    default = Scenario(
        graph=GraphSpec.make("random_regular", args.n, args.delta),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    try:
        specs = [
            ExpansionSpec.from_string(text)
            for text in (args.estimators or ["sampled"])
        ]
    except ValueError as exc:
        raise SystemExit(f"bad --estimator: {exc}") from None
    store = ResultStore(args.cache_dir)
    executor = _executor(args)
    seed = _master_seed(args, base, overrides)
    rows = []
    for spec in specs:
        key = store.expansion_key(base.graph, spec, seed)
        try:
            summary = store.get(key)
        except KeyError:
            try:
                summary = expansion_summary(
                    base.graph, expansion=spec, seed=seed, executor=executor
                )
            except ValueError as exc:
                # e.g. exact on a graph wider than max_set_bits, or an
                # alpha admitting no candidate sets.
                raise SystemExit(
                    f"estimator {spec.describe()!r} cannot run on "
                    f"{base.graph.describe()!r}: {exc}"
                ) from None
            store.put(key, summary, meta={"graph": base.graph.describe(),
                                          "expansion": spec.describe()})
        rows.append(
            [summary["expansion"], summary["n"], round(summary["beta_w"], 4),
             summary["bound"], summary["subset_size"], summary["candidates"]]
        )
    print(render_table(
        ["estimator", "n", "beta_w", "bound", "|S|", "candidates"], rows,
        title=f"wireless expansion of {base.graph.describe()} "
              f"[seed={seed}, jobs={args.jobs}]"))
    print(f"cache: {store.hits} hits, {store.misses} misses over "
          f"{len(specs)} estimators")
    return 0


def _cmd_worstcase(args: argparse.Namespace) -> int:
    from repro.expansion import expansion_of_set
    from repro.graphs import random_regular, worst_case_expander
    from repro.spokesman import wireless_lower_bound_of_set

    base = random_regular(args.n, args.delta, rng=args.seed)
    wc = worst_case_expander(base, beta=args.beta, epsilon=args.eps,
                             rng=args.seed + 1)
    ordinary = expansion_of_set(wc.graph, wc.planted_set)
    achieved, _ = wireless_lower_bound_of_set(
        wc.graph, wc.planted_set, rng=args.seed + 2)
    print(f"worst-case expander: n={wc.graph.n}, planted |S*|={wc.planted_set.size}")
    print(f"  core: {wc.core.mode} s={wc.core.s} k={wc.core.multiplier}")
    print(f"  β(S*)  = {ordinary:.3f}")
    print(f"  βw(S*) achieved {achieved:.3f}, cap {wc.planted_wireless_expansion_cap:.3f}")
    print(f"  gap β/βw ≥ {ordinary / wc.planted_wireless_expansion_cap:.2f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import run_experiment

    proc = run_experiment(
        args.experiment, jobs=args.jobs, smoke=True if args.smoke else None)
    return proc.returncode


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, summarize
    from repro.runtime import ResultStore
    from repro.scenario import GraphSpec, Scenario, ScenarioSweep

    store = ResultStore(args.cache_dir)
    default = Scenario(
        graph=GraphSpec.make("chain", args.s_values[0], args.layers[0]),
        channel=_channel_spec(args),
        trials=_trials(args, 4),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    if _graph_overridden(args, overrides):
        grid: dict = {}
    else:
        grid = {
            "graph": [
                GraphSpec.make("chain", s, l)
                for s in args.s_values
                for l in args.layers
            ]
        }
    sweep = ScenarioSweep(
        base=base,
        grid=grid,
        repetitions=args.reps,
        seed=_master_seed(args, base, overrides),
    )
    # Canonical spec dicts are the cache keys and the pickled scenarios the
    # task payloads — any helper producing a spec-equal run hits the same
    # entries.
    manifest = sweep.manifest(store)
    if args.resume:
        done, total = manifest.progress(store)
        print(f"sweep {manifest.sweep_id}: resuming, "
              f"{done}/{total} tasks already cached")
    else:
        dropped = store.drop(manifest.keys)
        note = f" ({dropped} stale cache entries dropped)" if dropped else ""
        print(f"sweep {manifest.sweep_id}: fresh run, "
              f"{manifest.task_count} tasks{note}")
    points = sweep.run(executor=_executor(args), cache=store)
    rows = []
    chain_mode = all("s" in p.result and "layers" in p.result for p in points)
    for first, rounds, completed in _rep_groups(points, args.reps):
        stats = summarize(rounds)
        if chain_mode:
            rows.append(
                [first["s"], first["layers"], first["n"], first["diameter"],
                 round(stats.mean, 1), stats.min, stats.max,
                 round(sum(completed) / len(completed), 3)])
        else:
            rows.append(
                [first["scenario"], first["n"], round(stats.mean, 1),
                 stats.min, stats.max,
                 round(sum(completed) / len(completed), 3)])
    headers = (
        ["s", "layers", "n", "D", "mean", "min", "max", "completion"]
        if chain_mode
        else ["scenario", "n", "mean", "min", "max", "completion"]
    )
    print(render_table(
        headers, rows,
        title=f"runtime sweep: {base.protocol.describe().capitalize()} rounds "
              f"[channel={_channel_label(args, base, overrides)}, "
              f"jobs={args.jobs}]"))
    cache_line = (f"cache: {store.hits} hits, {store.misses} misses over "
                  f"{manifest.task_count} tasks (manifest {manifest.sweep_id})")
    if store.time_saved > 0:
        cache_line += f"; replay saved ~{store.time_saved:.2f}s of compute"
    print(cache_line)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.obs.telemetry import RoundTelemetry, telemetry_events
    from repro.obs.tracing import active_recorder
    from repro.scenario import GraphSpec, Scenario

    default = Scenario(
        graph=GraphSpec.make("chain", args.s, args.layers),
        channel=_channel_spec(args),
        trials=_trials(args, 1),
        seed=_seed(args),
    )
    base, overrides = _resolve_scenario(args, default)
    # The whole point of the verb is the per-round anatomy, so telemetry
    # is forced on (the spec serializes it only when on, so a plain
    # --scenario string needs no telemetry= segment here).
    scenario = base if base.telemetry else base.with_overrides(
        {"telemetry": True}
    )
    batch = scenario.run(executor=_executor(args))
    tel = RoundTelemetry.from_batch(batch)
    rec = active_recorder()
    if rec is not None:
        for event in telemetry_events(tel, scenario=scenario.describe()):
            rec.record(event)
    rows = []
    for r in range(tel.rounds):
        receptions = int(tel.receptions[r].sum())
        victims = int(tel.collision_victims[r].sum())
        contacted = receptions + victims
        rows.append([
            r + 1,
            int(tel.transmitters[r].sum()),
            receptions,
            victims,
            int(tel.newly_informed[r].sum()),
            int(tel.wasted_transmissions[r].sum()),
            f"{victims / contacted:.1%}" if contacted else "-",
        ])
    if len(rows) > 40:
        # A round-capped run can log thousands of identical stall rounds;
        # keep the opening anatomy and the tail, elide the middle.
        elided = len(rows) - 36
        rows = rows[:28] + [["…"] * 7] + rows[-8:]
        rows[28][1] = f"({elided} rounds elided)"
    print(render_table(
        ["round", "tx", "recv", "victims", "newly", "wasted", "coll.rate"],
        rows,
        title=f"collision trace: {scenario.describe()}"))
    totals = {k: int(v.sum()) for k, v in tel.totals().items()}
    print(f"totals: {totals['transmitters']} transmissions, "
          f"{totals['collision_victims']} collision victims, "
          f"{totals['wasted_transmissions']} wasted; "
          f"mean collision rate {tel.mean_collision_rate():.1%}; "
          f"completion {batch.completion_rate:.0%}")
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs.tracing import format_summary, read_jsonl, summarize_events

    try:
        events = read_jsonl(args.file)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.file!r}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(
            f"{args.file!r} is not a JSONL trace: {exc}"
        ) from None
    print(format_summary(summarize_events(events)))
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.analysis import EXPERIMENTS
    from repro.expansion.spec import ESTIMATORS
    from repro.radio import CHANNELS
    from repro.scenario import GRAPHS, PROTOCOLS, SCENARIOS, WORKLOADS

    print("graph families (GraphSpec):")
    for name, entry in GRAPHS.items():
        tag = "  [seeded]" if entry.randomized else ""
        print(f"  {name:16s} {entry.summary}{tag}")
    print("\nprotocols (ProtocolSpec):")
    for name, entry in PROTOCOLS.items():
        alias = f" (alias: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {name:16s} {entry.summary}{alias}")
    print("\nchannels (ChannelSpec):")
    for name in sorted(CHANNELS):
        print(f"  {name:16s} {CHANNELS[name]}")
    print("\nworkloads (WorkloadSpec, `repro workloads show <name>`):")
    for name, entry in WORKLOADS.items():
        tag = "  [seeded]" if entry.randomized else ""
        print(f"  {name:16s} {entry.summary}{tag}")
    print("\nexpansion estimators (ExpansionSpec, `repro expansion -E`):")
    for name in sorted(ESTIMATORS):
        print(f"  {name:16s} {ESTIMATORS[name]}")
    print("\nnamed scenarios:")
    for name in sorted(SCENARIOS):
        scenario, summary = SCENARIOS[name]
        print(f"  {name:16s} {scenario.describe()}")
        if summary:
            print(f"  {'':16s} {summary}")
    bound = [e for e in EXPERIMENTS if e.scenario is not None]
    if bound:
        print("\nexperiment-bound scenarios (repro scenarios show E<k>):")
        for exp in bound:
            print(f"  {exp.id:16s} {exp.scenario.describe()}")
    print("\nspec form: 'graph | protocol | channel | workload | trials=T"
          " | seed=K' — e.g. repro broadcast --scenario"
          " 'chain(8, 4) | decay | erasure(0.1)' -S workload='gossip(k=4)'")
    return 0


def _cmd_workloads_list(args: argparse.Namespace) -> int:
    from repro.scenario import WORKLOADS

    print("workloads (WorkloadSpec — the fourth scenario segment):")
    for name, entry in WORKLOADS.items():
        tag = "  [seeded]" if entry.randomized else ""
        print(f"  {name:16s} {entry.summary}{tag}")
    print("\nspec form: 'graph | protocol | channel | workload' — e.g."
          " repro broadcast --scenario"
          " 'chain(8, 4) | decay | classic | gossip(k=4)'")
    return 0


def _cmd_workloads_show(args: argparse.Namespace) -> int:
    import inspect

    from repro.scenario import WORKLOADS, WorkloadSpec

    name = args.name.strip()
    try:
        spec = WorkloadSpec.from_string(name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    entry = spec.entry
    params = ", ".join(
        p.name if p.default is inspect.Parameter.empty
        else f"{p.name}={p.default!r}"
        for p in inspect.signature(entry.builder).parameters.values()
    )
    workload = spec.build()
    engines = "dense, bitset" if workload.set_semantics else (
        "dense only (folds per-cell values the packed engine cannot pack)"
    )
    print(f"workload:  {spec.describe()}")
    print(f"summary:   {entry.summary}")
    print(f"signature: {entry.name}({params})")
    print(f"engines:   {engines}")
    if entry.randomized:
        print("seeding:   draws from the per-trial generators after the "
              "protocol/channel resets")
    print(f"example:   repro broadcast -S workload='{spec.describe()}'")
    return 0


def _cmd_scenarios_show(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import EXPERIMENTS
    from repro.runtime import ResultStore
    from repro.scenario import get_scenario

    name = args.name.strip()
    scenario = None
    for exp in EXPERIMENTS:
        if exp.id == name.upper() and exp.scenario is not None:
            scenario = exp.scenario
            break
    if scenario is None:
        try:
            scenario = get_scenario(name)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(f"spec:      {scenario.describe()}")
    print(f"canonical: {json.dumps(scenario.to_dict(), sort_keys=True)}")
    store = ResultStore(args.cache_dir)
    print(f"cache key: {store.scenario_key(scenario)} (salt {store.salt})")
    realized = scenario.build()
    graph = realized.built.graph
    print(f"graph:     n={graph.n}, source={realized.source}")
    print(f"workload:  {scenario.workload.describe()}")
    for key, value in sorted(realized.built.meta.items()):
        print(f"  {key} = {value}")
    protocol_seed, graph_seed = scenario.seeds
    print(f"seeds:     protocol={protocol_seed}"
          + (f", graph={graph_seed}" if graph_seed is not None else
             " (deterministic graph)"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ResultStore, SweepManifest

    store = ResultStore(args.cache_dir)
    if args.cache_command == "stats":
        from repro.obs.metrics import METRICS

        st = store.stats()
        print(f"cache root: {st.root}")
        print(f"  entries:   {st.entries}")
        print(f"  manifests: {st.manifests}")
        print(f"  size:      {st.bytes / 1024:.1f} KiB")
        # Live counters cover this process (every ResultStore feeds the
        # process-wide metrics registry) — nonzero when the stats call
        # shares a process with the runs it measures.
        hits = METRICS.get("cache.hits")
        misses = METRICS.get("cache.misses")
        print(f"  live:      {hits:g} hits, {misses:g} misses"
              f" (get {METRICS.get('cache.get_seconds') * 1e3:.1f} ms,"
              f" put {METRICS.get('cache.put_seconds') * 1e3:.1f} ms)")
        saved = METRICS.get("cache.time_saved_seconds")
        if saved:
            print(f"  saved:     {saved:.2f} s of compute replayed")
        for sid in SweepManifest.list_ids(store):
            m = SweepManifest.load(store, sid)
            done, total = m.progress(store)
            print(f"  sweep {sid}: {done}/{total} tasks complete ({m.fn})")
        return 0
    removed = store.clear()
    print(f"cleared {removed.entries} cached results and "
          f"{removed.manifests} manifests from {removed.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        DEFAULT_SHARD_TRIALS,
        JobQueue,
        WorkerPool,
        create_server,
    )

    queue = JobQueue(args.queue)
    server = create_server(queue, host=args.host, port=args.port,
                           quiet=not args.verbose)
    print(f"queue:   {queue.path} (schema v{queue.schema_version()})")
    print(f"serving on {server.url} ({args.workers} worker"
          f"{'s' if args.workers != 1 else ''})")
    sys.stdout.flush()
    pool = WorkerPool(
        queue.path, cache_root=args.cache_dir, workers=args.workers,
        lease_ttl=args.lease_ttl,
        shard_trials=args.shard_trials or DEFAULT_SHARD_TRIALS)
    with pool:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    print("service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    started = _time.monotonic()
    try:
        job, created = client.submit(args.spec)
    except ServiceError as exc:
        # The same eager-validation message `--scenario` errors print.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    verb = "created" if created else "deduplicated to"
    print(f"job {job['id']} {verb} state={job['state']}")
    if job["state"] == "done":
        hit = " — cache hit, no recompute" if not created else ""
        print(f"done{hit}")
        return 0
    if args.no_stream:
        return 0
    try:
        for kind, payload in client.stream(job["id"], timeout=args.timeout):
            if kind == "shard":
                print(f"  shard {payload['shard']}/{payload['shards']}: "
                      f"{payload['trials_done']}/{payload['trials']} trials"
                      f" (mean_rounds={payload['mean_rounds']:.2f}"
                      f"{', resumed' if payload.get('resumed') else ''})")
            elif kind == "result":
                hit = ", cache hit" if payload.get("cache_hit") else ""
                print(f"  result: {payload['trials']} trials, "
                      f"mean_rounds={payload['mean_rounds']:.2f}, "
                      f"completion_rate={payload['completion_rate']:.3f}{hit}")
            elif kind in ("done", "failed", "cancelled", "timeout"):
                elapsed = _time.monotonic() - started
                suffix = f" ({payload['error']})" if payload.get("error") else ""
                print(f"{kind} in {elapsed:.2f}s{suffix}")
                return 0 if kind == "done" else 1
            sys.stdout.flush()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.jobs_command == "list":
            records = client.jobs(args.state)
            rows = [
                [r["id"], r["state"], r["attempts"],
                 f"{r['progress_done']}/{r['progress_total']}"
                 if r["progress_total"] else "-",
                 "yes" if r["cache_hit"] else "",
                 r["spec"] if len(r["spec"]) <= 48 else r["spec"][:45] + "..."]
                for r in records
            ]
            print(render_table(
                ["id", "state", "attempts", "progress", "cache hit", "spec"],
                rows, title=f"jobs ({len(rows)})"))
            return 0
        if args.jobs_command == "show":
            import json

            record = client.job(args.id)
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        payload = client.cancel(args.id)
        state = payload["job"]["state"]
        print(f"job {args.id} "
              + ("cancelled" if payload["cancelled"] else f"already {state}"))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _add_service_url(p: "argparse.ArgumentParser") -> None:
    from repro.service.api import DEFAULT_HOST, DEFAULT_PORT

    p.add_argument("--url", default=f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
                   help="service base URL (default: %(default)s)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="request/stream timeout in seconds")


def _add_trace_out(p: "argparse.ArgumentParser") -> None:
    p.add_argument(
        "--trace-out", dest="trace_out", default=None, metavar="FILE",
        help="record a JSONL runtime trace (spans, cache counters, "
             "telemetry events) to FILE; aggregate with "
             "`repro obs summary FILE`")


def _int_list(text: str) -> list[int]:
    return [int(tok) for tok in text.split(",") if tok]


def _float_list(text: str) -> list[float]:
    return [float(tok) for tok in text.split(",") if tok]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wireless Expanders (SPAA 2018) experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("core", help="Lemma 4.4 core-graph property sheet")
    p.add_argument("--sizes", type=_int_list, default=[2, 4, 8, 16, 32, 64])
    p.set_defaults(fn=_cmd_core)

    p = sub.add_parser("gbad", help="Lemma 3.3 Gbad table")
    p.add_argument("--s", type=int, default=6)
    p.add_argument("--deltas", type=_int_list, default=[4, 6])
    p.set_defaults(fn=_cmd_gbad)

    p = sub.add_parser("spokesman", help="algorithm comparison")
    p.add_argument("--instance", choices=["core", "gbad", "random"],
                   default="core")
    p.add_argument("--s", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_spokesman)

    p = sub.add_parser("broadcast", help="Section 5 chain scaling")
    p.add_argument("--s", type=int, default=8)
    p.add_argument("--layers", type=_int_list, default=[2, 4, 8])
    p.add_argument("--reps", type=int, default=3,
                   help="independent chains per grid point")
    p.add_argument("--trials", type=int, default=None,
                   help="batched protocol trials per chain (default 1; "
                        "overrides a --scenario-baked count)")
    _add_exec_flags(p)
    _add_channel_flags(p)
    _add_scenario_flags(p)
    p.set_defaults(fn=_cmd_broadcast)

    p = sub.add_parser("hops", help="per-hop concentration study")
    p.add_argument("--s", type=int, default=8)
    p.add_argument("--layers", type=_int_list, default=[6])
    p.add_argument("--reps", type=int, default=10,
                   help="independent chains")
    p.add_argument("--trials", type=int, default=None,
                   help="batched protocol trials per chain (default 1)")
    _add_exec_flags(p)
    _add_channel_flags(p)
    _add_scenario_flags(p)
    p.set_defaults(fn=_cmd_hops)

    p = sub.add_parser("channels",
                       help="E15 broadcast degradation across erasure rates")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--delta", type=int, default=8)
    p.add_argument("--s", type=int, default=8)
    p.add_argument("--trials", type=int, default=None,
                   help="batched protocol trials per point (default 32)")
    p.add_argument("--erasure-ps", type=_float_list,
                   default=[0.0, 0.1, 0.2, 0.3])
    _add_exec_flags(p)
    _add_scenario_flags(p)
    p.set_defaults(fn=_cmd_channels)

    p = sub.add_parser("schedule", help="synthesize + verify a static schedule")
    p.add_argument("--graph", choices=["hypercube", "grid", "regular"],
                   default="hypercube")
    p.add_argument("--size", type=int, default=6)
    p.add_argument("--reps", type=int, default=1,
                   help="independent Decay comparison runs")
    _add_exec_flags(p)
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser(
        "expansion",
        help="batched wireless-expansion (βw) estimation of a scenario's "
             "graph (E17)")
    p.add_argument("--n", type=int, default=64,
                   help="default random-regular instance size")
    p.add_argument("--delta", type=int, default=6,
                   help="default random-regular degree")
    p.add_argument(
        "-E", "--estimator", dest="estimators", action="append", default=[],
        metavar="SPEC",
        help="estimator spec (repeatable): sampled(samples=..., alpha=...), "
             "exact(max_set_bits=...), portfolio(...); default 'sampled'")
    p.add_argument("--cache-dir", default=None,
                   help="result-store root (default: results/cache)")
    _add_exec_flags(p)
    _add_scenario_flags(p)
    _add_trace_out(p)
    p.set_defaults(fn=_cmd_expansion)

    p = sub.add_parser("worstcase", help="Corollary 4.11 planted bad set")
    p.add_argument("--n", type=int, default=512)
    p.add_argument("--delta", type=int, default=128)
    p.add_argument("--beta", type=float, default=2.0)
    p.add_argument("--eps", type=float, default=0.45)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_worstcase)

    p = sub.add_parser(
        "run", help="regenerate a registered experiment (E1-E21) via its bench")
    p.add_argument("experiment", help="registry id, e.g. E17")
    p.add_argument("--smoke", action="store_true",
                   help="tiny-scale run (sets REPRO_BENCH_SMOKE=1)")
    _add_exec_flags(p, seed=False)
    _add_trace_out(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "sweep",
        help="cached, resumable chain-broadcast grid sweep via repro.runtime")
    p.add_argument("--s-values", type=_int_list, default=[4, 8],
                   help="chain widths (powers of two)")
    p.add_argument("--layers", type=_int_list, default=[2, 4])
    p.add_argument("--reps", type=int, default=2,
                   help="independent chains per grid point")
    p.add_argument("--trials", type=int, default=None,
                   help="batched protocol trials per chain (default 4)")
    p.add_argument("--cache-dir", default=None,
                   help="result-store root (default: results/cache)")
    p.add_argument("--resume", action="store_true",
                   help="replay completed tasks from the cache instead of "
                        "recomputing them")
    _add_exec_flags(p)
    _add_channel_flags(p)
    _add_scenario_flags(p)
    _add_trace_out(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="per-round collision telemetry of one scenario "
             "(transmitters, receptions, victims, newly informed, wasted)")
    p.add_argument("--s", type=int, default=8,
                   help="default chain width (ignored under --scenario)")
    p.add_argument("--layers", type=int, default=4,
                   help="default chain layers (ignored under --scenario)")
    p.add_argument("--trials", type=int, default=None,
                   help="batched protocol trials; counts are summed "
                        "across trials (default 1)")
    _add_exec_flags(p)
    _add_channel_flags(p)
    _add_scenario_flags(p)
    _add_trace_out(p)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "obs", help="observability: aggregate a --trace-out JSONL file")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    op = obs_sub.add_parser(
        "summary", help="per-span totals, task latency percentiles, cache "
                        "hit rate, telemetry totals")
    op.add_argument("file", help="JSONL trace file written by --trace-out")
    op.set_defaults(fn=_cmd_obs_summary)

    p = sub.add_parser(
        "scenarios",
        help="declarative scenario registry: list specs or inspect one")
    scen_sub = p.add_subparsers(dest="scenarios_command", required=True)
    lp = scen_sub.add_parser(
        "list", help="registered graph families, protocols, channels, and "
                     "named scenarios")
    lp.set_defaults(fn=_cmd_scenarios_list)
    sp = scen_sub.add_parser(
        "show", help="one scenario's spec string, canonical dict, cache "
                     "key, and realized graph")
    sp.add_argument("name",
                    help="preset name, experiment id (E7), or spec string")
    sp.add_argument("--cache-dir", default=None,
                    help="result-store root used for the cache key")
    sp.set_defaults(fn=_cmd_scenarios_show)

    p = sub.add_parser(
        "workloads",
        help="workload registry: list tasks or inspect one")
    wl_sub = p.add_subparsers(dest="workloads_command", required=True)
    wlp = wl_sub.add_parser(
        "list", help="registered workloads (the fourth scenario segment)")
    wlp.set_defaults(fn=_cmd_workloads_list)
    wsp = wl_sub.add_parser(
        "show", help="one workload's summary, signature, and engine support")
    wsp.add_argument("name",
                     help="workload name or spec string, e.g. gossip(k=4)")
    wsp.set_defaults(fn=_cmd_workloads_show)

    p = sub.add_parser(
        "serve",
        help="run the experiment service: HTTP API + a local worker pool")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes leasing jobs from the queue")
    p.add_argument("--queue", default=None,
                   help="job-queue SQLite file "
                        "(default: results/service/jobs.db)")
    p.add_argument("--cache-dir", default=None,
                   help="result-store root workers execute against "
                        "(default: results/cache)")
    p.add_argument("--lease-ttl", type=float, default=60.0,
                   help="seconds before a dead worker's lease expires")
    p.add_argument("--shard-trials", type=int, default=None,
                   help="trials per checkpoint shard (default 16)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a scenario spec to a running service and stream "
             "shard progress until it completes")
    p.add_argument("spec", help="scenario spec string, e.g. "
                                "'margulis(8) | decay | erasure(0.1) | "
                                "gossip(k=16)'")
    p.add_argument("--no-stream", action="store_true",
                   help="print the job id and return without streaming")
    _add_service_url(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "jobs", help="inspect the service queue: list, show, or cancel jobs")
    jobs_sub = p.add_subparsers(dest="jobs_command", required=True)
    jp = jobs_sub.add_parser("list", help="all jobs, newest last")
    jp.add_argument("--state", default=None,
                    help="filter: queued|running|done|failed|cancelled")
    _add_service_url(jp)
    jp.set_defaults(fn=_cmd_jobs)
    jp = jobs_sub.add_parser("show", help="one job's full record as JSON")
    jp.add_argument("id")
    _add_service_url(jp)
    jp.set_defaults(fn=_cmd_jobs)
    jp = jobs_sub.add_parser("cancel", help="cancel a queued/running job")
    jp.add_argument("id")
    _add_service_url(jp)
    jp.set_defaults(fn=_cmd_jobs)

    p = sub.add_parser("cache", help="inspect or wipe the runtime result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for verb, help_text in (
        ("stats", "entry/manifest counts, size, and sweep progress"),
        ("clear", "delete every cached result and manifest"),
    ):
        cp = cache_sub.add_parser(verb, help=help_text)
        cp.add_argument("--cache-dir", default=None,
                        help="result-store root (default: results/cache)")
        cp.set_defaults(fn=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs.tracing import recording

        # The whole command runs under one recording; the sink is written
        # on exit even when the command raises, so crashed runs keep their
        # partial trace.
        with recording(sink=trace_out):
            code = int(args.fn(args))
        print(f"trace written to {trace_out}")
        return code
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
