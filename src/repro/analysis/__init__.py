"""Experiment harness: sweeps, statistics, and table rendering."""

from repro.analysis.experiments import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    run_experiment,
    validate_registry,
)
from repro.analysis.robustness import (
    ERASURE_HEADERS,
    ErasurePoint,
    erasure_degradation,
)
from repro.analysis.stats import FitResult, SampleSummary, fit_loglinear, summarize
from repro.analysis.sweep import SweepPoint, run_sweep, sweep_grid
from repro.analysis.tables import format_value, render_table, write_table

__all__ = [
    "ERASURE_HEADERS",
    "EXPERIMENTS",
    "ErasurePoint",
    "Experiment",
    "FitResult",
    "SampleSummary",
    "SweepPoint",
    "erasure_degradation",
    "fit_loglinear",
    "format_value",
    "get_experiment",
    "render_table",
    "run_experiment",
    "run_sweep",
    "summarize",
    "sweep_grid",
    "validate_registry",
    "write_table",
]
