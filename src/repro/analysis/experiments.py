"""Experiment registry: the canonical index of reproduction targets.

A single table mapping experiment ids (E1–E22) to the paper statement they
reproduce, the modules that implement the pieces, and the benchmark file
that regenerates the table.  DESIGN.md and EXPERIMENTS.md mirror this
registry; a consistency test (``tests/analysis/test_experiments.py``)
asserts every referenced bench file and module actually exists, so the
documentation can never silently rot.

:func:`run_experiment` is the programmatic entry point behind ``repro run
E<k>``: it regenerates one registered experiment by invoking its bench
file in a pytest subprocess, threading the runtime knobs (``--jobs``,
smoke scale) through the ``REPRO_JOBS`` / ``REPRO_BENCH_SMOKE``
environment contract the benches honour.
"""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
from dataclasses import dataclass, field

from repro.scenario import Scenario

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_experiment",
    "validate_registry",
]


@dataclass(frozen=True)
class Experiment:
    """One row of the reproduction index.

    ``scenario`` is the canonical :class:`~repro.scenario.Scenario` the
    experiment's simulation runs (``None`` for pure-computation rows —
    the expansion/spokesman analyses that never touch the radio engine).
    Storing the spec object, not a closure or kwargs, is what makes
    "what configuration does E15 actually run?" a one-line answer
    (``repro scenarios show E15``) and every registered simulation
    reproducible through ``Scenario.run``.
    """

    id: str
    paper_ref: str
    claim: str
    modules: tuple[str, ...]
    bench_file: str
    result_files: tuple[str, ...] = field(default_factory=tuple)
    scenario: Scenario | None = None
    #: Supporting bench files the experiment's claim also leans on (run
    #: by the bench suite, not by ``repro run E<k>``), e.g. E20's
    #: telemetry-overhead pin.
    companion_benches: tuple[str, ...] = field(default_factory=tuple)


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "E1", "Theorem 1.1",
        "expanders have βw = Ω(β/log(2·min{Δ/β, Δβ}))",
        ("repro.spokesman.portfolio", "repro.expansion.bounds"),
        "bench_positive_thm11.py", ("E1_positive_thm11.txt",),
    ),
    Experiment(
        "E2", "Theorem 1.2 / Corollary 4.11",
        "worst-case expanders with matching βw upper bound",
        ("repro.graphs.worst_case", "repro.graphs.generalized_core"),
        "bench_negative_thm12.py", ("E2_negative_thm12.txt",),
    ),
    Experiment(
        "E3", "Lemma 3.1",
        "spectral bound: unique ⇒ ordinary expansion",
        ("repro.expansion.spectral",),
        "bench_spectral_lemma31.py", ("E3_spectral_lemma31.txt",),
    ),
    Experiment(
        "E4", "Lemma 3.3 + Remark 1",
        "Gbad: βu = 2β − Δ exactly, wireless ≥ max{2β−Δ, Δ/2}",
        ("repro.graphs.gbad", "repro.graphs.gbad_analysis"),
        "bench_gbad_lemma33.py", ("E4_gbad_lemma33.txt",),
    ),
    Experiment(
        "E5", "Lemma 4.4",
        "core graph: all five structural properties",
        ("repro.graphs.core_graph",),
        "bench_core_graph.py", ("E5_core_graph.txt",),
    ),
    Experiment(
        "E6", "Lemmas 4.6/4.7/4.8",
        "generalized cores for arbitrary (Δ*, β*)",
        ("repro.graphs.generalized_core",),
        "bench_generalized_core.py", ("E6_generalized_core.txt",),
    ),
    Experiment(
        "E7", "Section 5 + Corollary 5.1",
        "broadcast needs Ω(D·log(n/D)) rounds; ≤ 2s new per round",
        ("repro.graphs.broadcast_chain", "repro.radio.lower_bound",
         "repro.radio.hop_analysis"),
        "bench_broadcast_lower_bound.py",
        ("E7_broadcast_lower_bound.txt", "E7_corollary51.txt"),
        scenario=Scenario.from_string("chain(8, 4) | decay | classic | trials=16"),
    ),
    Experiment(
        "E8", "Section 4.2.1",
        "spokesman election: algorithms vs optimum vs CW line",
        ("repro.spokesman.sampling", "repro.spokesman.exact"),
        "bench_spokesman.py", ("E8_spokesman.txt",),
    ),
    Experiment(
        "E9", "Appendix A",
        "every deterministic guarantee margin ≥ 1",
        ("repro.spokesman.naive_greedy", "repro.spokesman.partition",
         "repro.spokesman.recursive", "repro.spokesman.degree_classes",
         "repro.spokesman.threshold_partition"),
        "bench_appendix_guarantees.py", ("E9_appendix_guarantees.txt",),
    ),
    Experiment(
        "E10", "Section 1.2 corollary",
        "low arboricity ⇒ wireless ≈ ordinary expansion",
        ("repro.graphs.arboricity", "repro.graphs.planar"),
        "bench_arboricity.py", ("E10_arboricity.txt",),
    ),
    Experiment(
        "E11", "Observation 2.1",
        "exact β ≥ βw ≥ βu sandwich",
        ("repro.expansion.wireless", "repro.expansion.subsets"),
        "bench_exact_small.py", ("E11_exact_small.txt",),
    ),
    Experiment(
        "E12", "ablations",
        "protocol comparison; Lemma 4.2 sampling-scale sweep",
        ("repro.radio.protocols", "repro.radio.aloha",
         "repro.spokesman.sampling"),
        "bench_broadcast_ablation.py",
        ("E12_protocol_ablation.txt", "E12_scale_ablation.txt"),
        scenario=Scenario.from_string("chain(8, 4) | aloha(0.5) | classic | trials=16"),
    ),
    Experiment(
        "E13", "Section 4.2.1 application",
        "static broadcast schedules via repeated spokesman election",
        ("repro.radio.schedule",),
        "bench_schedule_synthesis.py", ("E13_schedule_synthesis.txt",),
        scenario=Scenario.from_string("hypercube(6) | decay | classic | trials=8"),
    ),
    Experiment(
        "E14", "engine",
        "batched trial-vectorized simulation: looped vs batched throughput",
        ("repro.radio.broadcast", "repro.radio.network",
         "repro.radio.protocols"),
        "bench_batched_broadcast.py", ("E14_batched_engine.txt",),
        scenario=Scenario.from_string("hypercube(10) | decay | classic | trials=256"),
    ),
    Experiment(
        "E15", "robustness",
        "channel & fault models: expander vs worst-case broadcast "
        "degradation under erasure and jamming",
        ("repro.radio.channel", "repro.radio.broadcast",
         "repro.analysis.robustness"),
        "bench_channel_robustness.py",
        ("E15_channel_robustness.txt", "E15_jamming.txt"),
        scenario=Scenario.from_string(
            "random_regular(256, 8) | decay | erasure(0.1) | trials=32"
        ),
    ),
    Experiment(
        "E16", "runtime",
        "parallel executor + content-addressed cache: sweep scaling and "
        "warm-cache replay, bit-for-bit equal to serial",
        ("repro.runtime.executor", "repro.runtime.store",
         "repro.runtime.manifest"),
        "bench_runtime_scaling.py", ("E16_runtime_scaling.txt",),
        scenario=Scenario.from_string("chain(4, 2) | decay | classic | trials=4"),
    ),
    Experiment(
        "E17", "Sections 2 + 5 empirics",
        "batched βw estimation at scale: (expansion, broadcast rounds) "
        "pairs across graph families; batched pipeline ≥ 10× over the "
        "serial estimator, bit-for-bit identical",
        ("repro.expansion.pipeline", "repro.expansion.spec",
         "repro.scenario.tasks"),
        "bench_expansion_scaling.py",
        ("E17_expansion_vs_broadcast.txt", "E17_expansion_speedup.txt"),
        scenario=Scenario.from_string("margulis(6) | decay | classic | trials=8"),
    ),
    Experiment(
        "E18", "engine",
        "datacenter-scale broadcast: packed-bitset frontier engine (CSR "
        "neighbour-word gathers + popcount reception) vs dense; ≥ 5× less "
        "working memory and ≥ 3× reception-step throughput at n = 10^5, "
        "bit-for-bit identical, with MemoryBudget column sharding",
        ("repro.radio.bitset", "repro.radio.broadcast",
         "repro.graphs.graph"),
        "bench_datacenter_scale.py", ("E18_datacenter_scale.txt",),
        scenario=Scenario.from_string(
            "random_regular(100000, 16) | decay | classic | trials=64 "
            "| engine=bitset"
        ),
    ),
    Experiment(
        "E19", "workload zoo",
        "beyond one-to-all broadcast: expander vs non-expander families "
        "under k-source gossip and in-network aggregation — the "
        "(αw, βw)-expansion advantage persists across tasks, with "
        "gossip(k) closing the gap as sources multiply",
        ("repro.workload", "repro.radio.broadcast", "repro.scenario.spec"),
        "bench_workload_zoo.py", ("E19_workload_zoo.txt",),
        scenario=Scenario.from_string(
            "random_regular(256, 8) | decay | classic | gossip(k=16) "
            "| trials=32"
        ),
    ),
    Experiment(
        "E20", "observability",
        "collision anatomy at scale: per-round collision-rate and "
        "wasted-transmission trajectories, expander vs chain vs C⁺ under "
        "classic and erasure channels on the bitset engine — batched "
        "telemetry bit-for-bit identical dense vs bitset, ≤ 15% overhead",
        ("repro.obs.telemetry", "repro.obs.tracing",
         "repro.radio.broadcast", "repro.radio.trace"),
        "bench_collision_telemetry.py", ("E20_collision_telemetry.txt",),
        scenario=Scenario.from_string(
            "random_regular(10000, 16) | decay | classic | trials=64 "
            "| engine=bitset | telemetry=on"
        ),
        companion_benches=("bench_telemetry_overhead.py",),
    ),
    Experiment(
        "E21", "experiment service",
        "from library to serving system: sustained submissions/sec and "
        "p50/p99 submit→done latency through the persistent job queue, "
        "worker pool, and streaming HTTP API — warm-cache resubmission "
        "completes without recompute, and a killed worker resumes from "
        "its trial-shard checkpoints bit-for-bit",
        ("repro.service.queue", "repro.service.worker",
         "repro.service.api", "repro.runtime.store"),
        "bench_service_load.py", ("E21_service_load.txt",),
        scenario=Scenario.from_string(
            "margulis(8) | decay | erasure(0.1) | gossip(k=16) | trials=32"
        ),
    ),
    Experiment(
        "E22", "array backend",
        "pluggable array backends: the dense engine's neighbour-count and "
        "delivered-value matmuls routed through the repro.backend shim — "
        "numpy vs torch-cpu kernel throughput on hypercube(14) at T=4096, "
        "with every backend's seeded batch outcomes equal to the numpy "
        "host's (coins are drawn host-side; the host path is bit-for-bit "
        "the pre-backend engine)",
        ("repro.backend", "repro.radio.network", "repro.radio.broadcast",
         "repro.workload.zoo", "repro.expansion.pipeline"),
        "bench_backend_matmul.py", ("E22_backend_matmul.txt",),
        scenario=Scenario.from_string(
            "hypercube(14) | decay | classic | trials=4096"
        ),
    ),
)


def get_experiment(exp_id: str) -> Experiment:
    """Registry lookup by id (case-insensitive); raises on unknown ids."""
    wanted = exp_id.strip().upper()
    for exp in EXPERIMENTS:
        if exp.id == wanted:
            return exp
    known = ", ".join(e.id for e in EXPERIMENTS)
    raise ValueError(f"unknown experiment {exp_id!r}; registered: {known}")


def default_benchmarks_dir() -> str:
    """The repo's ``benchmarks/`` directory, located relative to the
    package's src-layout checkout."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(os.path.dirname(os.path.dirname(src_dir)), "benchmarks")


def run_experiment(
    exp_id: str,
    jobs: int = 1,
    smoke: bool | None = None,
    benchmarks_dir: str | None = None,
    pytest_args: tuple[str, ...] = (),
    capture: bool = False,
) -> subprocess.CompletedProcess:
    """Regenerate one registered experiment's tables.

    Runs the experiment's bench file through pytest in a subprocess (the
    benches are pytest modules, and a fresh interpreter keeps their
    pytest-benchmark plumbing and result archiving identical to a full
    suite run).  ``jobs`` is exported as ``REPRO_JOBS`` for benches that
    schedule through the runtime executor; ``smoke`` pins
    ``REPRO_BENCH_SMOKE`` (``None`` inherits the caller's environment).
    Returns the :class:`subprocess.CompletedProcess` (stdout/stderr
    captured as text when ``capture``).
    """
    exp = get_experiment(exp_id)
    bench_dir = benchmarks_dir or default_benchmarks_dir()
    bench_path = os.path.join(bench_dir, exp.bench_file)
    if not os.path.isfile(bench_path):
        raise FileNotFoundError(
            f"bench file for {exp.id} not found at {bench_path}; "
            "run from a source checkout or pass benchmarks_dir"
        )
    env = dict(os.environ)
    env["REPRO_JOBS"] = str(int(jobs))
    if smoke is not None:
        env["REPRO_BENCH_SMOKE"] = "1" if smoke else "0"
    # The src/ directory two levels above the package, so the subprocess
    # can `import repro` even from an uninstalled checkout.
    src_dir = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    cmd = [
        sys.executable, "-m", "pytest", bench_path,
        "-q", "-p", "no:cacheprovider", *pytest_args,
    ]
    return subprocess.run(cmd, env=env, capture_output=capture, text=True)


def validate_registry(benchmarks_dir: str) -> list[str]:
    """Return human-readable inconsistencies (empty list = registry clean).

    Checks that every referenced module imports, every bench file exists
    on disk, and every bound scenario spec round-trips through its string
    form (so ``repro scenarios show E<k>`` can never rot).
    """
    problems: list[str] = []
    seen_ids = set()
    for exp in EXPERIMENTS:
        if exp.id in seen_ids:
            problems.append(f"duplicate experiment id {exp.id}")
        seen_ids.add(exp.id)
        for module in exp.modules:
            try:
                importlib.import_module(module)
            except ImportError as exc:
                problems.append(f"{exp.id}: module {module} missing ({exc})")
        for name in (exp.bench_file, *exp.companion_benches):
            if not os.path.isfile(os.path.join(benchmarks_dir, name)):
                problems.append(f"{exp.id}: bench file {name} missing")
        if exp.scenario is not None:
            try:
                if Scenario.from_string(exp.scenario.describe()) != exp.scenario:
                    problems.append(
                        f"{exp.id}: scenario does not round-trip its string form"
                    )
            except Exception as exc:  # noqa: BLE001 - collected, not raised
                problems.append(f"{exp.id}: scenario invalid ({exc})")
    return problems
