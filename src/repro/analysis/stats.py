"""Summary statistics and scaling-law fits for the experiment sweeps.

The paper's claims are asymptotic; the experiments verify *shapes*.  Two
tools cover all of them:

* :func:`summarize` — mean / std / min / max / normal-approximation CI of a
  sample (for repeated randomized runs);
* :func:`fit_loglinear` — least-squares fit of ``y ≈ a·x`` (through the
  origin) and of ``y ≈ a·x + b``, with the R² of the linear model; used to
  check e.g. "broadcast rounds grow linearly in ``D·log(n/D)``".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "SampleSummary", "fit_loglinear", "summarize"]


@dataclass(frozen=True)
class SampleSummary:
    """Mean/σ/min/max plus a ~95% normal CI of a 1-D sample."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        if self.n <= 1:
            return (self.mean, self.mean)
        half = 1.96 * self.std / np.sqrt(self.n)
        return (self.mean - half, self.mean + half)


def summarize(values) -> SampleSummary:
    """Summarize a non-empty 1-D sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SampleSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
    )


@dataclass(frozen=True)
class FitResult:
    """Least-squares fits of ``y`` against ``x``."""

    slope_through_origin: float
    slope: float
    intercept: float
    r_squared: float


def fit_loglinear(x, y) -> FitResult:
    """Fit ``y ≈ a·x`` and ``y ≈ a·x + b``; report R² of the affine fit.

    A high R² with positive slope certifies the claimed proportional
    scaling; the through-origin slope is the empirical constant of the
    ``Θ(·)`` statement.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching samples with at least two points")
    denom = float((x * x).sum())
    slope0 = float((x * y).sum() / denom) if denom else 0.0
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(
        slope_through_origin=slope0,
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r2,
    )
