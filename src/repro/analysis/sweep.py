"""Deterministic parameter sweeps.

A sweep is a cartesian product of named parameter lists; each grid point is
evaluated with its own derived seed so that results are independent of
evaluation order and reproducible from the master seed — the discipline the
hpc-parallel guides prescribe for experiment farms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro._util import as_rng, spawn_seeds

__all__ = ["SweepPoint", "run_sweep", "sweep_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameter assignment, per-point seed, and result."""

    params: dict[str, Any]
    seed: int
    result: Any


def sweep_grid(space: Mapping[str, Sequence]) -> Iterator[dict[str, Any]]:
    """Yield all parameter assignments of the cartesian grid, in a fixed
    (lexicographic-by-key) order."""
    keys = sorted(space.keys())
    for combo in itertools.product(*(space[k] for k in keys)):
        yield dict(zip(keys, combo))


def run_sweep(
    space: Mapping[str, Sequence],
    fn: Callable[..., Any],
    rng=None,
    repetitions: int = 1,
) -> list[SweepPoint]:
    """Evaluate ``fn(**params, seed=seed)`` over the grid.

    ``repetitions`` independent seeds are derived per grid point; the
    callable receives the point's parameters plus its own ``seed`` kwarg.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    grid = list(sweep_grid(space))
    seeds = spawn_seeds(as_rng(rng), len(grid) * repetitions)
    out: list[SweepPoint] = []
    for i, params in enumerate(grid):
        for r in range(repetitions):
            seed = seeds[i * repetitions + r]
            result = fn(**params, seed=seed)
            out.append(SweepPoint(params=dict(params), seed=seed, result=result))
    return out
