"""Deterministic parameter sweeps.

A sweep is a cartesian product of named parameter lists; each grid point is
evaluated with its own derived seed so that results are independent of
evaluation order and reproducible from the master seed — the discipline the
hpc-parallel guides prescribe for experiment farms.

Repetition-heavy sweeps should hand the harness a *batched* evaluator
(``batch_fn``): it receives a grid point's parameters plus the full list of
that point's repetition seeds and returns one result per seed, so a
trial-vectorized engine (e.g.
:func:`repro.radio.broadcast.run_broadcast_batch`) can amortize all
repetitions of a grid point into one call.  Seed derivation is identical in
both modes, so a sweep can switch between ``fn`` and ``batch_fn`` without
changing which random streams any repetition sees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro._util import as_rng, spawn_seeds

__all__ = ["SweepPoint", "run_sweep", "sweep_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameter assignment, per-point seed, and result."""

    params: dict[str, Any]
    seed: int
    result: Any


def _validate_space(space: Mapping[str, Sequence]) -> None:
    """Reject grids that would silently be empty or mis-shapen.

    Each dimension must be a non-string sized iterable (list, tuple, numpy
    array, …) with at least one value — a single empty dimension empties
    the whole cartesian product, and a bare string would sweep over its
    characters.
    """
    for key in sorted(space):
        values = space[key]
        if isinstance(values, (str, bytes)) or not hasattr(values, "__len__"):
            raise TypeError(
                f"sweep dimension {key!r} must be a non-string sequence of "
                f"values (e.g. a list), got {type(values).__name__}"
            )
        if len(values) == 0:
            raise ValueError(
                f"sweep dimension {key!r} is empty; every dimension needs "
                "at least one value (an empty dimension would silently "
                "produce an empty grid)"
            )


def sweep_grid(space: Mapping[str, Sequence]) -> Iterator[dict[str, Any]]:
    """Yield all parameter assignments of the cartesian grid, in a fixed
    (lexicographic-by-key) order.  Dimensions are validated eagerly."""
    _validate_space(space)
    return _sweep_grid_iter(space)


def _sweep_grid_iter(space: Mapping[str, Sequence]) -> Iterator[dict[str, Any]]:
    keys = sorted(space.keys())
    for combo in itertools.product(*(space[k] for k in keys)):
        yield dict(zip(keys, combo))


def run_sweep(
    space: Mapping[str, Sequence],
    fn: Callable[..., Any] | None = None,
    seed=None,
    repetitions: int = 1,
    batch_fn: Callable[..., Sequence[Any]] | None = None,
    static_params: Mapping[str, Any] | None = None,
    executor=None,
    cache=None,
    scenario=None,
) -> list[SweepPoint]:
    """Evaluate a callable — or a :class:`~repro.scenario.Scenario` — over
    the grid, one seed per repetition.

    **Scenario mode.**  With ``scenario=`` the grid's keys are scenario
    override paths (``"graph"``, ``"channel.erasure_p"``, ``"trials"``, …
    — see :meth:`repro.scenario.Scenario.with_overrides`) and every grid
    point runs the overridden spec through the batched engine, returning
    one :func:`~repro.scenario.tasks.scenario_summary` dict per
    repetition::

        run_sweep(
            {"graph": ["chain(8, 2)", "chain(8, 4)"]},
            scenario=Scenario.from_string("chain(8, 2) | decay | classic | trials=8"),
            seed=0, repetitions=3,
        )

    Seed derivation, executor scheduling, and caching are identical to
    callable mode (the work is delegated to
    :class:`~repro.scenario.ScenarioSweep`), but cache keys are the
    scenarios' canonical dicts — spec-equal runs hit regardless of which
    helper produced them.

    **Callable mode.**  Exactly one of ``fn`` and ``batch_fn``:

    * ``fn(**params, seed=seed)`` is called once per (grid point,
      repetition) — the general-purpose looped mode;
    * ``batch_fn(**params, seeds=[...])`` is called once per grid point
      with all of that point's repetition seeds and must return one result
      per seed — the hook for trial-vectorized engines.

    ``static_params`` are forwarded to every call unchanged but are *not*
    part of the grid (and not recorded on the returned points) — the hook
    for threading run-wide configuration such as a graph instance or a
    channel-model factory through a sweep.  Pass stateful objects as
    zero-argument factories (e.g. ``channel_factory=lambda:
    ErasureChannel(0.2)``) so each evaluation owns fresh state.

    Seeds are derived identically in both modes, so the returned
    :class:`SweepPoint` list (one entry per repetition, in grid × repetition
    order) is the same either way for equivalent evaluators.

    ``executor`` and ``cache`` hand the grid to the runtime layer
    (:mod:`repro.runtime`): ``executor`` (an
    :class:`~repro.runtime.Executor` or an int job count) schedules tasks —
    one per repetition in ``fn`` mode, one per grid point in ``batch_fn``
    mode — across processes, and ``cache`` (a
    :class:`~repro.runtime.ResultStore` or cache-root path) replays
    completed tasks and persists new ones, making interrupted sweeps
    resumable.  Because every task owns a derived seed, the returned list
    is bit-for-bit identical whichever executor runs it and whether results
    were computed or replayed.  Parallel execution requires module-level
    evaluators and picklable parameters; caching additionally requires
    content-addressable ones (plain data or dataclass specs such as
    :class:`repro.radio.ChannelSpec`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if scenario is not None:
        if fn is not None or batch_fn is not None or static_params is not None:
            raise ValueError(
                "scenario mode takes no fn/batch_fn/static_params — the "
                "scenario spec is the whole configuration"
            )
        from repro.scenario.sweep import ScenarioSweep

        points = ScenarioSweep(
            base=scenario,
            grid=space,
            repetitions=repetitions,
            seed=seed,
        ).run(executor=executor, cache=cache)
        return [
            SweepPoint(
                params=dict(p.overrides), seed=p.scenario.seed, result=p.result
            )
            for p in points
        ]
    if (fn is None) == (batch_fn is None):
        raise ValueError("provide exactly one of fn and batch_fn")
    static = dict(static_params) if static_params is not None else {}
    overlap = set(static) & (set(space) | {"seed", "seeds"})
    if overlap:
        raise ValueError(
            f"static_params shadow grid or reserved parameters: "
            f"{sorted(overlap)}"
        )
    grid = list(sweep_grid(space))
    seeds = spawn_seeds(as_rng(seed), len(grid) * repetitions)
    if executor is not None or cache is not None:
        # The runtime layer reproduces this function's scheduling exactly
        # (same grid order, same seeds, same call signatures), adding
        # process parallelism and the content-addressed cache on top.
        from repro.runtime.executor import execute_sweep

        return execute_sweep(
            space=space,
            grid=grid,
            seeds=seeds,
            fn=fn,
            batch_fn=batch_fn,
            repetitions=repetitions,
            static=static,
            executor=executor,
            cache=cache,
        )
    out: list[SweepPoint] = []
    for i, params in enumerate(grid):
        point_seeds = seeds[i * repetitions : (i + 1) * repetitions]
        if batch_fn is not None:
            results = list(
                batch_fn(**params, **static, seeds=list(point_seeds))
            )
            if len(results) != repetitions:
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{repetitions} seeds at point {params}"
                )
        else:
            results = [
                fn(**params, **static, seed=seed) for seed in point_seeds
            ]
        for seed, result in zip(point_seeds, results):
            out.append(SweepPoint(params=dict(params), seed=seed, result=result))
    return out
