"""ASCII table rendering for experiment output.

Every benchmark prints its reproduction table through :func:`render_table`
and archives a copy under ``benchmarks/results/`` via :func:`write_table`,
so EXPERIMENTS.md can quote stable artifacts.
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["format_value", "render_table", "write_table"]


def format_value(value) -> str:
    """Render one cell: floats to 4 significant digits, rest via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule, GitHub-markdown-ish."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_table(
    path: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render, write to ``path`` (creating directories), and return the text."""
    text = render_table(headers, rows, title)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return text
