"""E15 channel-robustness measurement, shared by the CLI and the bench.

One definition of the erasure-degradation experiment — family pair, classic
baseline, and the completion/mean/p90/slowdown columns — so the interactive
``repro channels`` table and the archived ``E15_channel_robustness.txt``
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

ERASURE_HEADERS = [
    "family",
    "n",
    "erasure p",
    "completion",
    "mean",
    "p90",
    "slowdown",
]


@dataclass(frozen=True)
class ErasurePoint:
    """One (family, erasure probability) measurement.

    ``baseline`` is the same seeded batch under the classic channel —
    slowdowns are relative to it, independent of the sweep's grid order,
    and the ``p = 0`` point must reproduce it bit for bit.
    """

    family: str
    n: int
    p: float
    batch: "BatchBroadcastResult"  # noqa: F821 - forward ref, radio layer
    baseline: "BatchBroadcastResult"  # noqa: F821

    @property
    def slowdown(self) -> float:
        """Mean-rounds ratio against the classic baseline."""
        return self.batch.mean_rounds / self.baseline.mean_rounds

    @property
    def row(self) -> list:
        """The :data:`ERASURE_HEADERS` display row."""
        return [
            self.family,
            self.n,
            self.p,
            round(self.batch.completion_rate, 3),
            round(self.batch.mean_rounds, 1),
            int(self.batch.round_quantiles([0.9])[0]),
            round(self.slowdown, 2),
        ]


def _erasure_batch(graph, p, trials, rng, max_rounds):
    """One seeded Decay batch under ``ErasureChannel(p)`` (``p=None`` is the
    classic-channel baseline) — module-level so the runtime executor can
    schedule measurement points across worker processes."""
    from repro.radio import DecayProtocol, ErasureChannel, run_broadcast_batch

    return run_broadcast_batch(
        graph,
        DecayProtocol(),
        trials=trials,
        rng=rng,
        channel=None if p is None else ErasureChannel(p),
        max_rounds=max_rounds,
    )


def erasure_degradation(
    families: Sequence[tuple[str, "Graph"]],  # noqa: F821
    erasure_ps: Sequence[float],
    trials: int,
    rng,
    max_rounds: int | None = None,
    executor=None,
) -> list[ErasurePoint]:
    """Measure Decay broadcast degradation of each family across erasure
    probabilities, against a classic-channel baseline with the same seed.

    ``families`` is a list of ``(label, graph)`` pairs; the same master
    ``rng`` seeds every run, so the ``p = 0`` point is bit-for-bit the
    baseline (the channel layer's anchor invariant).

    ``executor`` (a :class:`repro.runtime.Executor` or int job count) farms
    the independent (family, p) measurements — baselines included — across
    worker processes; every batch is seeded identically either way, so the
    point list is bit-for-bit the serial one.  Parallel scheduling
    re-seeds every batch from ``rng``, so it requires a reusable seed (an
    int or ``None``), not a stateful generator.
    """
    import numpy as np

    if executor is not None and isinstance(rng, np.random.Generator):
        raise TypeError(
            "erasure_degradation(executor=...) needs an int (or None) rng: "
            "a Generator would be consumed in executor-dependent order"
        )
    # One task per (family, p) plus each family's baseline, all independent.
    calls = []
    for name, graph in families:
        for p in (None, *erasure_ps):
            calls.append(
                dict(graph=graph, p=p, trials=trials, rng=rng, max_rounds=max_rounds)
            )
    if executor is None:
        batches = [_erasure_batch(**kw) for kw in calls]
    else:
        from repro.runtime import as_executor

        batches = as_executor(executor).map(_erasure_batch, calls)
    points = []
    per_family = 1 + len(erasure_ps)
    for f, (name, graph) in enumerate(families):
        baseline = batches[f * per_family]
        for j, p in enumerate(erasure_ps):
            points.append(
                ErasurePoint(
                    family=name,
                    n=graph.n,
                    p=p,
                    batch=batches[f * per_family + 1 + j],
                    baseline=baseline,
                )
            )
    return points
