"""E15 channel-robustness measurement, shared by the CLI and the bench.

One definition of the erasure-degradation experiment — family pair, classic
baseline, and the completion/mean/p90/slowdown columns — so the interactive
``repro channels`` table and the archived ``E15_channel_robustness.txt``
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


ERASURE_HEADERS = [
    "family",
    "n",
    "erasure p",
    "completion",
    "mean",
    "p90",
    "slowdown",
]


@dataclass(frozen=True)
class ErasurePoint:
    """One (family, erasure probability) measurement.

    ``baseline`` is the same seeded batch under the classic channel —
    slowdowns are relative to it, independent of the sweep's grid order,
    and the ``p = 0`` point must reproduce it bit for bit.
    """

    family: str
    n: int
    p: float
    batch: "BatchBroadcastResult"  # noqa: F821 - forward ref, radio layer
    baseline: "BatchBroadcastResult"  # noqa: F821

    @property
    def slowdown(self) -> float:
        """Mean-rounds ratio against the classic baseline."""
        return self.batch.mean_rounds / self.baseline.mean_rounds

    @property
    def row(self) -> list:
        """The :data:`ERASURE_HEADERS` display row."""
        return [
            self.family,
            self.n,
            self.p,
            round(self.batch.completion_rate, 3),
            round(self.batch.mean_rounds, 1),
            int(self.batch.round_quantiles([0.9])[0]),
            round(self.slowdown, 2),
        ]


def _erasure_batch(graph, p, trials, rng, max_rounds):
    """One seeded Decay batch under ``ErasureChannel(p)`` (``p=None`` is the
    classic-channel baseline) — module-level so the runtime executor can
    schedule measurement points across worker processes."""
    from repro.radio import DecayProtocol, ErasureChannel, run_broadcast_batch

    return run_broadcast_batch(
        graph,
        DecayProtocol(),
        trials=trials,
        seed=rng,
        channel=None if p is None else ErasureChannel(p),
        max_rounds=max_rounds,
    )


def _family_scenario(gspec, p, trials, seed, max_rounds, protocol):
    """The scenario one (family spec, erasure p) measurement runs."""
    from repro.radio import ChannelSpec
    from repro.scenario import Scenario

    channel = (
        ChannelSpec() if p is None else ChannelSpec(name="erasure", erasure_p=p)
    )
    return Scenario(
        graph=gspec,
        protocol=protocol,
        channel=channel,
        trials=trials,
        seed=seed if seed is not None else 0,
        max_rounds=max_rounds,
    )


def erasure_degradation(
    families: Sequence[tuple[str, object]],
    erasure_ps: Sequence[float],
    trials: int,
    seed=None,
    max_rounds: int | None = None,
    executor=None,
    protocol="decay",
) -> list[ErasurePoint]:
    """Measure broadcast degradation of each family across erasure
    probabilities, against a classic-channel baseline with the same seed.

    ``families`` is a list of ``(label, family)`` pairs, where ``family``
    is a graph spec — a :class:`~repro.scenario.GraphSpec` or spec string
    such as ``"random_regular(256, 8)"`` — or, for direct engine users, an
    already-built :class:`~repro.graphs.graph.Graph`.  Spec families are
    routed through :class:`~repro.scenario.Scenario` (and ``protocol``
    selects their protocol spec, default Decay); every (family, p) point
    shares the same master ``seed``, so within a family the graph instance
    is fixed and the ``p = 0`` point is bit-for-bit the classic baseline —
    the channel layer's anchor invariant.

    ``executor`` (a :class:`repro.runtime.Executor` or int job count) farms
    the independent (family, p) measurements — baselines included — across
    worker processes; every batch is seeded identically either way, so the
    point list is bit-for-bit the serial one.  Parallel scheduling
    re-seeds every batch from ``seed``, so it requires a reusable seed (an
    int or ``None``), not a stateful generator.
    """
    import numpy as np

    from repro.graphs.graph import Graph
    from repro.scenario import GraphSpec, ProtocolSpec
    from repro.scenario.tasks import run_scenario

    if executor is not None and isinstance(seed, np.random.Generator):
        raise TypeError(
            "erasure_degradation(executor=...) needs an int (or None) seed: "
            "a Generator would be consumed in executor-dependent order"
        )
    if not isinstance(protocol, ProtocolSpec):
        protocol = (
            ProtocolSpec.from_string(protocol)
            if isinstance(protocol, str)
            else ProtocolSpec.from_dict(protocol)
        )
    # One task per (family, p) plus each family's baseline, all independent.
    # Spec families schedule run_scenario (the canonical payload); built
    # graphs keep the direct-engine task.
    calls: list[tuple] = []  # (fn, kwargs)
    for name, family in families:
        if isinstance(family, Graph):
            gspec = None
        else:
            gspec = (
                family
                if isinstance(family, GraphSpec)
                else GraphSpec.from_string(family)
            )
        for p in (None, *erasure_ps):
            if gspec is None:
                calls.append(
                    (
                        _erasure_batch,
                        dict(
                            graph=family,
                            p=p,
                            trials=trials,
                            rng=seed,
                            max_rounds=max_rounds,
                        ),
                    )
                )
            else:
                calls.append(
                    (
                        run_scenario,
                        dict(
                            scenario=_family_scenario(
                                gspec, p, trials, seed, max_rounds, protocol
                            )
                        ),
                    )
                )
    if executor is None:
        batches = [fn(**kw) for fn, kw in calls]
    else:
        from repro.runtime import as_executor

        exec_ = as_executor(executor)
        batches = [None] * len(calls)
        # Group by task fn so each executor.map call is homogeneous.
        for fn in {fn for fn, _ in calls}:
            idx = [i for i, (f, _) in enumerate(calls) if f is fn]
            for i, result in zip(
                idx, exec_.map(fn, [calls[i][1] for i in idx])
            ):
                batches[i] = result
    points = []
    per_family = 1 + len(erasure_ps)
    for f, (name, _family) in enumerate(families):
        baseline = batches[f * per_family]
        # The vertex count rides on the batch itself (first_informed_round
        # is (n, T)) — no extra graph build just to report n.
        n = int(baseline.first_informed_round.shape[0])
        for j, p in enumerate(erasure_ps):
            points.append(
                ErasurePoint(
                    family=name,
                    n=n,
                    p=p,
                    batch=batches[f * per_family + 1 + j],
                    baseline=baseline,
                )
            )
    return points
