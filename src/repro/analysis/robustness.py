"""E15 channel-robustness measurement, shared by the CLI and the bench.

One definition of the erasure-degradation experiment — family pair, classic
baseline, and the completion/mean/p90/slowdown columns — so the interactive
``repro channels`` table and the archived ``E15_channel_robustness.txt``
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

ERASURE_HEADERS = [
    "family",
    "n",
    "erasure p",
    "completion",
    "mean",
    "p90",
    "slowdown",
]


@dataclass(frozen=True)
class ErasurePoint:
    """One (family, erasure probability) measurement.

    ``baseline`` is the same seeded batch under the classic channel —
    slowdowns are relative to it, independent of the sweep's grid order,
    and the ``p = 0`` point must reproduce it bit for bit.
    """

    family: str
    n: int
    p: float
    batch: "BatchBroadcastResult"  # noqa: F821 - forward ref, radio layer
    baseline: "BatchBroadcastResult"  # noqa: F821

    @property
    def slowdown(self) -> float:
        """Mean-rounds ratio against the classic baseline."""
        return self.batch.mean_rounds / self.baseline.mean_rounds

    @property
    def row(self) -> list:
        """The :data:`ERASURE_HEADERS` display row."""
        return [
            self.family,
            self.n,
            self.p,
            round(self.batch.completion_rate, 3),
            round(self.batch.mean_rounds, 1),
            int(self.batch.round_quantiles([0.9])[0]),
            round(self.slowdown, 2),
        ]


def erasure_degradation(
    families: Sequence[tuple[str, "Graph"]],  # noqa: F821
    erasure_ps: Sequence[float],
    trials: int,
    rng,
    max_rounds: int | None = None,
) -> list[ErasurePoint]:
    """Measure Decay broadcast degradation of each family across erasure
    probabilities, against a classic-channel baseline with the same seed.

    ``families`` is a list of ``(label, graph)`` pairs; the same master
    ``rng`` seeds every run, so the ``p = 0`` point is bit-for-bit the
    baseline (the channel layer's anchor invariant).
    """
    from repro.radio import DecayProtocol, ErasureChannel, run_broadcast_batch

    points = []
    for name, graph in families:
        baseline = run_broadcast_batch(
            graph, DecayProtocol(), trials=trials, rng=rng, max_rounds=max_rounds
        )
        for p in erasure_ps:
            batch = run_broadcast_batch(
                graph,
                DecayProtocol(),
                trials=trials,
                rng=rng,
                channel=ErasureChannel(p),
                max_rounds=max_rounds,
            )
            points.append(
                ErasurePoint(
                    family=name, n=graph.n, p=p, batch=batch, baseline=baseline
                )
            )
    return points
