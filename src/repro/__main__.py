"""``python -m repro`` — run single experiments from the command line."""

import sys

from repro.cli import main

sys.exit(main())
