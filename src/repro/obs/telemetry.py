"""Batched per-round collision telemetry — the engine-side half of
:mod:`repro.obs`.

The paper reasons about the collision *structure* of a round: who
transmitted, who heard, who was silenced.  The batched engines record that
structure on demand — ``run_broadcast_batch(..., telemetry=True)`` makes
both backends emit, per round × per trial,

* ``transmitters`` — processors that spent energy this round;
* ``receptions`` — successful deliveries (post-channel, so lossy channels
  show as receptions < contacts);
* ``collision_victims`` — silent processors with ≥ 2 transmitting
  neighbours, always counted against the *base* adjacency (the classic
  collision picture, matching the legacy tracer's semantics on every
  channel);
* ``newly_informed`` — cells first satisfied this round;
* ``wasted_transmissions`` — transmitters none of whose neighbours
  received this round.  A receiver hears its unique transmitting
  neighbour, so a transmitter is *wasted* exactly when no neighbour shows
  up in the received mask — ``mask & ~(A @ received > 0)`` on the dense
  path, a packed neighbour-OR fold on the bitset path.

The counts ride :class:`~repro.radio.broadcast.BatchBroadcastResult.extras`
under :data:`TELEMETRY_PREFIX`-ed keys — ``(R, T)`` int64 matrices with the
trial axis last, full batch width (completed trials contribute zero rows),
so they concatenate through ``merge_batches`` and memory-budget sharding
like every other extras array (shorter shards are zero-padded: a finished
trial transmits nothing).  Dense and bitset engines produce bit-for-bit
identical telemetry on every configuration both support.

:class:`RoundTelemetry` is the assembled view (``RoundTelemetry.from_batch``)
with the derived rates the experiments plot.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Mapping

import numpy as np

__all__ = [
    "TELEMETRY_FIELDS",
    "TELEMETRY_PREFIX",
    "RoundTelemetry",
    "TelemetryAccumulator",
    "telemetry_events",
]

#: Extras-key prefix marking per-round telemetry matrices.  ``merge_batches``
#: zero-pads the round axis of keys carrying it before concatenating shards.
TELEMETRY_PREFIX = "telemetry_"

#: The recorded quantities, in canonical order.
TELEMETRY_FIELDS = (
    "transmitters",
    "receptions",
    "collision_victims",
    "newly_informed",
    "wasted_transmissions",
)


@dataclass(frozen=True)
class RoundTelemetry:
    """Per-round × per-trial collision accounting of one batch run.

    Every field is an ``(R, T)`` int64 matrix (``R`` = rounds the batch
    executed, ``T`` = trials, trial axis last per the extras convention).
    Rows past a trial's completion are zero — a finished trial neither
    transmits nor receives.
    """

    transmitters: np.ndarray
    receptions: np.ndarray
    collision_victims: np.ndarray
    newly_informed: np.ndarray
    wasted_transmissions: np.ndarray

    def __post_init__(self) -> None:
        shape = self.transmitters.shape
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.ndim != 2 or arr.shape != shape:
                raise ValueError(
                    f"telemetry field {f.name} has shape {arr.shape}, "
                    f"expected {shape}"
                )

    @property
    def rounds(self) -> int:
        """Rounds recorded (the batch's global round count)."""
        return int(self.transmitters.shape[0])

    @property
    def trials(self) -> int:
        return int(self.transmitters.shape[1])

    @property
    def contacted(self) -> np.ndarray:
        """``(R, T)`` — silent processors with ≥ 1 transmitting neighbour
        (victims + successful receptions, the collision-rate denominator)."""
        return self.collision_victims + self.receptions

    @property
    def collision_rates(self) -> np.ndarray:
        """``(R, T)`` float — ``victims / (victims + receptions)`` per
        round and trial, 0.0 where nobody was contacted."""
        contacted = self.contacted
        out = np.zeros(contacted.shape, dtype=float)
        np.divide(
            self.collision_victims, contacted, out=out, where=contacted > 0
        )
        return out

    @property
    def wasted_rates(self) -> np.ndarray:
        """``(R, T)`` float — fraction of transmissions that reached
        nobody, 0.0 in rounds without transmitters."""
        out = np.zeros(self.transmitters.shape, dtype=float)
        np.divide(
            self.wasted_transmissions,
            self.transmitters,
            out=out,
            where=self.transmitters > 0,
        )
        return out

    def mean_collision_rate(self) -> float:
        """Mean per-(round, trial) collision rate over cells with contact
        (the batch generalization of the legacy tracer's scalar)."""
        contacted = self.contacted
        mask = contacted > 0
        if not mask.any():
            return 0.0
        return float(self.collision_rates[mask].mean())

    def totals(self) -> dict[str, np.ndarray]:
        """Per-trial ``(T,)`` totals of every recorded quantity."""
        return {
            name: getattr(self, name).sum(axis=0) for name in TELEMETRY_FIELDS
        }

    def to_extras(self) -> dict[str, np.ndarray]:
        """The extras-dict form the engines emit."""
        return {
            TELEMETRY_PREFIX + name: getattr(self, name)
            for name in TELEMETRY_FIELDS
        }

    @classmethod
    def from_extras(cls, extras: Mapping[str, np.ndarray]) -> "RoundTelemetry":
        """Assemble from a :class:`BatchBroadcastResult.extras` dict.

        Raises ``KeyError`` when the run was not executed with
        ``telemetry=True``.
        """
        missing = [
            name
            for name in TELEMETRY_FIELDS
            if TELEMETRY_PREFIX + name not in extras
        ]
        if missing:
            raise KeyError(
                f"extras carry no telemetry ({missing[0]!r} absent) — run "
                "the batch with telemetry=True"
            )
        return cls(
            **{
                name: np.asarray(extras[TELEMETRY_PREFIX + name])
                for name in TELEMETRY_FIELDS
            }
        )

    @classmethod
    def from_batch(cls, batch) -> "RoundTelemetry":
        """Assemble from a :class:`~repro.radio.broadcast.BatchBroadcastResult`."""
        return cls.from_extras(batch.extras)


class TelemetryAccumulator:
    """Collects one full-width ``(T,)`` count row per field per round
    inside an engine loop.

    The dense engine compacts completed trials out of its working set, so
    its per-round rows arrive as ``(active_ids, narrow row)`` pairs and are
    scattered to batch width here (absent columns stay zero — exactly what
    a frozen trial contributes).  The bitset engine appends full rows
    directly.
    """

    def __init__(self, trials: int) -> None:
        self.trials = int(trials)
        self._rows: dict[str, list[np.ndarray]] = {
            name: [] for name in TELEMETRY_FIELDS
        }

    def append_full(self, **rows: np.ndarray) -> None:
        """Record one round of full-width ``(T,)`` rows (bitset path)."""
        for name in TELEMETRY_FIELDS:
            self._rows[name].append(np.asarray(rows[name], dtype=np.int64))

    def append_active(self, active: np.ndarray, **rows: np.ndarray) -> None:
        """Record one round of compacted rows, scattered via ``active``
        trial ids (dense path)."""
        for name in TELEMETRY_FIELDS:
            full = np.zeros(self.trials, dtype=np.int64)
            full[active] = rows[name]
            self._rows[name].append(full)

    def extras(self) -> dict[str, np.ndarray]:
        """The accumulated ``(R, T)`` matrices as prefixed extras entries."""
        out: dict[str, np.ndarray] = {}
        for name in TELEMETRY_FIELDS:
            rows = self._rows[name]
            out[TELEMETRY_PREFIX + name] = (
                np.stack(rows)
                if rows
                else np.zeros((0, self.trials), dtype=np.int64)
            )
        return out


def telemetry_events(
    telemetry: RoundTelemetry, scenario: str | None = None
) -> Iterator[dict]:
    """Render telemetry as JSONL-able event dicts, one per round.

    Counts are summed across trials and the collision rate is the pooled
    ``victims / contacted`` of the round; the events drop into the same
    sinks as runtime spans and aggregate through ``repro obs summary``.
    """
    for r in range(telemetry.rounds):
        event: dict = {"kind": "telemetry", "round": r + 1}
        if scenario is not None:
            event["scenario"] = scenario
        contacted = 0
        for name in TELEMETRY_FIELDS:
            value = int(getattr(telemetry, name)[r].sum())
            event[name] = value
            if name in ("receptions", "collision_victims"):
                contacted += value
        event["collision_rate"] = (
            event["collision_victims"] / contacted if contacted else 0.0
        )
        yield event
