"""Unified observability: batched collision telemetry + runtime tracing.

Two halves, one import surface:

* :mod:`repro.obs.telemetry` — per round × per trial collision accounting
  emitted by both broadcast engines (``run_broadcast_batch(...,
  telemetry=True)``), riding ``BatchBroadcastResult.extras`` bit-for-bit
  identically on the dense and bitset paths.
* :mod:`repro.obs.tracing` — monotonic-clock spans and counters recorded
  across the executor, the result cache, scenario sharding, and the
  expansion pipeline, written as JSONL and aggregated by
  ``repro obs summary``.

:mod:`repro.obs.metrics` holds the process-local counter registry the
cache reports through ``repro cache stats``.
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.telemetry import (
    TELEMETRY_FIELDS,
    TELEMETRY_PREFIX,
    RoundTelemetry,
    TelemetryAccumulator,
    telemetry_events,
)
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    active_recorder,
    format_summary,
    maybe_span,
    read_jsonl,
    recording,
    summarize_events,
    traced,
    write_jsonl,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "RoundTelemetry",
    "Span",
    "TELEMETRY_FIELDS",
    "TELEMETRY_PREFIX",
    "TelemetryAccumulator",
    "TraceRecorder",
    "active_recorder",
    "format_summary",
    "maybe_span",
    "read_jsonl",
    "recording",
    "summarize_events",
    "telemetry_events",
    "traced",
    "write_jsonl",
]
