"""Runtime tracing — the wall-clock half of :mod:`repro.obs`.

A :class:`TraceRecorder` collects flat event dicts: nestable monotonic-clock
*spans* (``time.perf_counter`` start/duration, slash-joined nesting path),
*counters* (cache hits/misses), and the per-round *telemetry* events of
:func:`repro.obs.telemetry.telemetry_events`.  One recorder is installed
per process via :func:`recording`; instrumented call sites ask for it with
:func:`maybe_span`/:func:`active_recorder`, which cost a single global read
when tracing is off — the default, and the reason instrumentation is safe
to leave in hot-ish paths like ``ResultStore.get``.

Process safety: ``ParallelExecutor`` workers each build a private recorder
(installed by the ``_invoke_obs`` trampoline), run the task under a
``task`` span, and ship their events back with the result; the parent
merges them at join via :meth:`TraceRecorder.extend`.  Events carry the
recording pid so merged files stay attributable.

Sinks are JSON Lines — one event per line, written next to whatever the
command already produces — and aggregate through :func:`summarize_events`
(per-span totals, p50/p99 task latency, cache hit rate), the engine behind
``repro obs summary``.
"""

from __future__ import annotations

import functools
import json
import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Span",
    "TraceRecorder",
    "active_recorder",
    "format_summary",
    "maybe_span",
    "read_jsonl",
    "recording",
    "summarize_events",
    "traced",
    "write_jsonl",
]


@dataclass(frozen=True)
class Span:
    """One completed span, as recorded: ``name`` is the leaf label,
    ``path`` the slash-joined nesting stack at entry."""

    name: str
    path: str
    start: float
    duration: float
    pid: int
    meta: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        event = {
            "kind": "span",
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
        }
        if self.meta:
            event["meta"] = self.meta
        return event

    @classmethod
    def from_event(cls, event: dict) -> "Span":
        return cls(
            name=event["name"],
            path=event.get("path", event["name"]),
            start=float(event.get("start", 0.0)),
            duration=float(event["duration"]),
            pid=int(event.get("pid", 0)),
            meta=dict(event.get("meta", {})),
        )


class TraceRecorder:
    """An append-only event log with a span stack.

    Spans nest per recorder (recorders are process-local, one live span
    stack each); ``perf_counter`` timestamps are only comparable within
    the recording process, durations always are.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.events: list[dict] = []
        self._stack: list[str] = []

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[None]:
        """Record a span around the body; exceptions still close it."""
        self._stack.append(name)
        path = "/".join(self._stack)
        start = self._clock()
        try:
            yield
        finally:
            duration = self._clock() - start
            self._stack.pop()
            self.events.append(
                Span(
                    name=name,
                    path=path,
                    start=start,
                    duration=duration,
                    pid=os.getpid(),
                    meta=meta,
                ).to_event()
            )

    def counter(self, name: str, value: float = 1.0) -> None:
        """Record a counter increment event."""
        self.events.append(
            {
                "kind": "counter",
                "name": name,
                "value": float(value),
                "pid": os.getpid(),
            }
        )

    def record(self, event: dict) -> None:
        """Append a pre-built event (e.g. a telemetry round)."""
        self.events.append(dict(event))

    def extend(self, events: Iterable[dict]) -> None:
        """Merge another recorder's events (worker join)."""
        self.events.extend(events)

    def spans(self) -> list[Span]:
        return [
            Span.from_event(e) for e in self.events if e.get("kind") == "span"
        ]

    def write(self, path) -> None:
        write_jsonl(path, self.events)


_ACTIVE: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The recorder installed by the innermost :func:`recording`, if any."""
    return _ACTIVE


@contextmanager
def recording(
    sink=None, recorder: TraceRecorder | None = None
) -> Iterator[TraceRecorder]:
    """Install a recorder as the process-wide active one.

    ``sink``, when given, is a path the events are written to (JSONL) on
    exit — including the error path, so a crashed run still leaves its
    trace behind.  Nesting restores the previous recorder on exit.
    """
    global _ACTIVE
    rec = recorder if recorder is not None else TraceRecorder()
    previous = _ACTIVE
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = previous
        if sink is not None:
            rec.write(sink)


def maybe_span(name: str, **meta):
    """A span on the active recorder, or a free no-op when tracing is off."""
    rec = _ACTIVE
    if rec is None:
        return nullcontext()
    return rec.span(name, **meta)


def traced(name: str):
    """Decorator form of :func:`maybe_span` — zero-cost call-through when
    no recorder is active.  ``functools.wraps`` keeps the wrapped
    function's qualname, so decorated module-level functions still pickle
    into ``ParallelExecutor`` workers and keep their cache-key identity.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            rec = _ACTIVE
            if rec is None:
                return fn(*args, **kwargs)
            with rec.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def write_jsonl(path, events: Iterable[dict]) -> None:
    """Write events as JSON Lines (one compact object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")))
            handle.write("\n")


def read_jsonl(path) -> list[dict]:
    """Read a JSONL event file (blank lines tolerated)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate a trace into the ``repro obs summary`` view.

    Returns a plain dict with:

    * ``spans`` — per span name: count, total/mean/max seconds;
    * ``tasks`` — count and p50/p99 latency of ``task`` spans (the unit of
      executor work);
    * ``counters`` — summed counter values by name, plus ``cache_hit_rate``
      when cache counters are present;
    * ``telemetry`` — rounds covered, summed counts, and the pooled
      collision rate of any embedded telemetry events.
    """
    span_stats: dict[str, dict] = {}
    task_durations: list[float] = []
    counters: dict[str, float] = {}
    telemetry: dict[str, float] = {}
    telemetry_rounds = 0

    for event in events:
        kind = event.get("kind")
        if kind == "span":
            name = event.get("name", "?")
            duration = float(event.get("duration", 0.0))
            stat = span_stats.setdefault(
                name, {"count": 0, "total": 0.0, "max": 0.0}
            )
            stat["count"] += 1
            stat["total"] += duration
            stat["max"] = max(stat["max"], duration)
            if name == "task":
                task_durations.append(duration)
        elif kind == "counter":
            name = event.get("name", "?")
            counters[name] = counters.get(name, 0.0) + float(
                event.get("value", 0.0)
            )
        elif kind == "telemetry":
            telemetry_rounds += 1
            for key, value in event.items():
                if key in ("kind", "round", "scenario"):
                    continue
                if isinstance(value, (int, float)):
                    telemetry[key] = telemetry.get(key, 0.0) + value

    for stat in span_stats.values():
        stat["mean"] = stat["total"] / stat["count"] if stat["count"] else 0.0

    summary: dict = {"spans": span_stats, "counters": counters}

    if task_durations:
        task_durations.sort()
        summary["tasks"] = {
            "count": len(task_durations),
            "p50": _quantile(task_durations, 0.50),
            "p99": _quantile(task_durations, 0.99),
            "total": sum(task_durations),
        }

    hits = counters.get("cache.hit", 0.0)
    misses = counters.get("cache.miss", 0.0)
    if hits or misses:
        summary["cache_hit_rate"] = hits / (hits + misses)

    if telemetry_rounds:
        contacted = telemetry.get("receptions", 0.0) + telemetry.get(
            "collision_victims", 0.0
        )
        summary["telemetry"] = {
            "rounds": telemetry_rounds,
            **{k: v for k, v in telemetry.items() if k != "collision_rate"},
            "collision_rate": (
                telemetry.get("collision_victims", 0.0) / contacted
                if contacted
                else 0.0
            ),
        }

    return summary


def format_summary(summary: dict) -> str:
    """Render :func:`summarize_events` output as an aligned text report."""
    lines: list[str] = []

    spans = summary.get("spans", {})
    if spans:
        lines.append("spans:")
        width = max(len(name) for name in spans)
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            stat = spans[name]
            lines.append(
                f"  {name:<{width}}  x{stat['count']:<6d} "
                f"total {stat['total']*1e3:10.2f} ms  "
                f"mean {stat['mean']*1e3:8.3f} ms  "
                f"max {stat['max']*1e3:8.3f} ms"
            )

    tasks = summary.get("tasks")
    if tasks:
        lines.append(
            f"tasks: {tasks['count']} spans, "
            f"p50 {tasks['p50']*1e3:.3f} ms, "
            f"p99 {tasks['p99']*1e3:.3f} ms, "
            f"total {tasks['total']*1e3:.2f} ms"
        )

    counters = summary.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:g}")
    if "cache_hit_rate" in summary:
        lines.append(f"cache hit rate: {summary['cache_hit_rate']:.1%}")

    telemetry = summary.get("telemetry")
    if telemetry:
        lines.append(
            f"telemetry: {telemetry['rounds']} rounds, "
            f"{int(telemetry.get('transmitters', 0))} transmissions, "
            f"{int(telemetry.get('collision_victims', 0))} collision victims, "
            f"{int(telemetry.get('wasted_transmissions', 0))} wasted, "
            f"collision rate {telemetry['collision_rate']:.1%}"
        )

    if not lines:
        lines.append("empty trace")
    return "\n".join(lines)
