"""A tiny process-local metrics registry.

Long-lived counters that outlive any single :func:`~repro.obs.tracing.recording`
window — currently the cache's live hit/miss/latency tallies, surfaced by
``repro cache stats``.  Deliberately minimal: named float accumulators, no
labels, no export machinery.
"""

from __future__ import annotations

__all__ = ["MetricsRegistry", "METRICS"]


class MetricsRegistry:
    """Named monotonically-increasing float counters."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def incr(self, name: str, value: float = 1.0) -> None:
        self._values[name] = self._values.get(name, 0.0) + float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """A copy of every counter, for display or assertion."""
        return dict(self._values)

    def reset(self) -> None:
        """Clear all counters (test isolation)."""
        self._values.clear()


#: The process-wide registry instrumented call sites write to.
METRICS = MetricsRegistry()
