#!/usr/bin/env python
"""AST lint: backend-routed packages must not import numpy bare.

The array-backend refactor routes every dense hot path through
:mod:`repro.backend` — routed modules spell the host namespace
``np = HOST.xp`` so the one numpy binding is the shim's, and an
accelerator backend can stand in without the module noticing.  A bare
``import numpy`` in a routed module silently pins that code to the host
and is exactly the drift this lint exists to catch.

Policy
------
Every module under the scanned packages (``repro.radio``,
``repro.workload``, ``repro.expansion``, ``repro.backend``) that imports
numpy directly — ``import numpy``, ``import numpy as np``, ``from numpy
import ...``, anywhere in the file including function bodies — must be
listed in ``tools/backend_numpy_allowlist.txt`` with a reason.  The
allowlist is a ratchet in both directions: an unlisted import fails, and
a listed module that stops importing numpy fails too (delete its entry).

Run from the repo root (CI runs it in the lint job)::

    python tools/lint_backend_imports.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The packages whose dense kernels route through repro.backend.
SCAN_PACKAGES = (
    "src/repro/radio",
    "src/repro/workload",
    "src/repro/expansion",
    "src/repro/backend",
)

ALLOWLIST_PATH = Path(__file__).with_name("backend_numpy_allowlist.txt")


def numpy_imports(tree: ast.AST):
    """Yield ``(lineno, statement)`` for every direct numpy import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    yield node.lineno, f"import {alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "numpy" or module.startswith("numpy."):
                yield node.lineno, f"from {module} import ..."


def read_allowlist() -> set[str]:
    entries = set()
    for raw in ALLOWLIST_PATH.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def main() -> int:
    allow = read_allowlist()
    errors: list[str] = []
    importers: set[str] = set()
    scanned: set[str] = set()
    for package in SCAN_PACKAGES:
        for path in sorted((ROOT / package).rglob("*.py")):
            rel = path.relative_to(ROOT).as_posix()
            scanned.add(rel)
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
            hits = list(numpy_imports(tree))
            if not hits:
                continue
            importers.add(rel)
            if rel in allow:
                continue
            for lineno, stmt in hits:
                errors.append(
                    f"{rel}:{lineno}: bare `{stmt}` in a backend-routed "
                    f"package — route through repro.backend (spell the host "
                    f"namespace `np = HOST.xp`) or add the module to "
                    f"{ALLOWLIST_PATH.name} with a reason"
                )
    for rel in sorted(allow - importers):
        suffix = (
            "no longer imports numpy — delete its allowlist entry"
            if rel in scanned
            else "is not a scanned module — delete its allowlist entry"
        )
        errors.append(f"{ALLOWLIST_PATH.name}: {rel} {suffix}")
    if errors:
        print("\n".join(errors))
        print(f"\nbackend import lint: {len(errors)} error(s)")
        return 1
    print(
        f"backend import lint: OK ({len(scanned)} modules scanned, "
        f"{len(importers)} allowlisted numpy-only)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
