"""Quickstart: the three expansion notions and why wireless wins.

Walks the paper's opening story on the ``C⁺`` graph (a clique plus a weakly
attached source): ordinary expansion is great, unique-neighbour expansion
collapses after one broadcast round, wireless expansion survives — and the
spokesman machinery finds the witness subset automatically.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    cplus_graph,
    expansion_of_set,
    unique_expansion_of_set,
    wireless_expansion_of_set_exact,
)
from repro.graphs import cplus_informed_after_round_one
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
)


def main() -> None:
    clique = 12
    g = cplus_graph(clique)
    print(f"C+ graph: clique of {clique} plus source s0; n = {g.n}")

    # The informed set after round one: {s0, x, y}.
    s = cplus_informed_after_round_one(clique)
    print(f"\ninformed set after round 1: {np.flatnonzero(s).tolist()}")
    print(f"  ordinary expansion β(S)  = {expansion_of_set(g, s):.3f}")
    print(f"  unique expansion  βu(S) = {unique_expansion_of_set(g, s):.3f}"
          "   <- everyone collides!")
    bw, witness = wireless_expansion_of_set_exact(g, s)
    print(f"  wireless expansion βw(S) = {bw:.3f}  via S' = {witness.tolist()}")

    # Radio broadcast: flooding deadlocks, decay and the spokesman genie win.
    print("\nbroadcast from s0:")
    for proto in (FloodingProtocol(), DecayProtocol(), SpokesmanBroadcastProtocol()):
        res = run_broadcast(g, proto, source=0, max_rounds=200, seed=0)
        status = f"completed in {res.rounds} rounds" if res.completed else (
            f"STALLED at {res.informed_per_round[-1]}/{g.n} informed"
        )
        print(f"  {proto.name:12s} {status}")


if __name__ == "__main__":
    main()
