"""Quickstart for the runtime layer: parallel, cached, resumable sweeps.

Runs the same chain-broadcast grid three ways through ``run_sweep`` —
inline serial, process-parallel, and cache-backed — and shows that all
three produce bit-for-bit identical ``SweepPoint`` lists while the cached
rerun is a pure replay.

Run it twice to see the cache warm up::

    python examples/parallel_sweep.py            # computes, then replays
    python examples/parallel_sweep.py --jobs 4   # same results, more cores

Equivalent CLI: ``repro sweep --s-values 4,8 --layers 2,4 --jobs 4`` then
``... --resume``; ``repro cache stats`` to inspect the store.
"""

import argparse
import tempfile
import time

from repro.analysis import run_sweep
from repro.runtime import ParallelExecutor, ResultStore
from repro.runtime.tasks import chain_broadcast_point

SPACE = {"s": [4, 8], "layers": [2, 4]}  # 4 grid points
SWEEP = dict(seed=0, repetitions=4, static_params={"trials": 32})


def timed(label, **kwargs):
    t0 = time.perf_counter()
    points = run_sweep(SPACE, chain_broadcast_point, **SWEEP, **kwargs)
    print(f"{label:>24}: {len(points)} points in {time.perf_counter() - t0:.2f}s")
    return points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    serial = timed("serial")
    parallel = timed(f"parallel (jobs={args.jobs})",
                     executor=ParallelExecutor(args.jobs))
    assert parallel == serial, "executors must agree bit for bit"

    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        cold = timed("cold cache", cache=store)
        warm = timed("warm cache (replay)", cache=store)
        assert cold == warm == serial
        print(f"{'cache':>24}: {store.hits} hits / {store.misses} misses "
              f"({store.stats().entries} entries)")

    best = min(serial, key=lambda p: p.result["mean_rounds"])
    print(f"{'fastest grid point':>24}: {best.params} "
          f"mean {best.result['mean_rounds']:.1f} rounds")


if __name__ == "__main__":
    # Required guard: ParallelExecutor spawns worker processes that
    # re-import this module.
    main()
