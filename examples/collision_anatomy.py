"""Collision anatomy through the observability layer (E20, example-sized).

The paper's broadcast bounds are collision arguments: Decay completes
*because* its halving schedule limits how often a silent vertex hears
two transmitters at once, and the Section 5 topologies are exactly the
graphs where no schedule can avoid that. ``telemetry=on`` turns those
arguments into per-round counts — transmitters, receptions, collision
victims, newly-informed, wasted transmissions — recorded for every
trial at once, bit-for-bit identical between the dense and bitset
engines.

Run:  python examples/collision_anatomy.py
"""

import tempfile

import numpy as np

from repro.obs.telemetry import RoundTelemetry, telemetry_events
from repro.obs.tracing import read_jsonl, recording, summarize_events
from repro.scenario import Scenario


def pooled(tel: RoundTelemetry, field: str) -> np.ndarray:
    return getattr(tel, field).sum(axis=1)


def show_rounds(tel: RoundTelemetry, limit: int = 8) -> None:
    print("  round    tx  recv  victims  newly  wasted")
    rows = min(tel.rounds, limit)
    for r in range(rows):
        print(f"  {r + 1:5d} {pooled(tel, 'transmitters')[r]:5d} "
              f"{pooled(tel, 'receptions')[r]:5d} "
              f"{pooled(tel, 'collision_victims')[r]:8d} "
              f"{pooled(tel, 'newly_informed')[r]:6d} "
              f"{pooled(tel, 'wasted_transmissions')[r]:7d}")
    if tel.rounds > rows:
        print(f"  ... {tel.rounds - rows} more rounds")


def main() -> None:
    # Decay on an expander: collisions happen (the schedule is paying
    # for contention) but never starve progress — completion stays 1.
    decay = Scenario.from_string(
        "random_regular(256, 8) | decay | classic | trials=64 | seed=7 "
        "| engine=bitset | telemetry=on"
    )
    batch = decay.run()
    tel = RoundTelemetry.from_batch(batch)
    print(f"decay on random_regular(256, 8): "
          f"completion {batch.completion_rate:.0%}, "
          f"mean collision rate {tel.mean_collision_rate():.3f}")
    show_rounds(tel)

    # Flooding on C⁺: after round 1 every informed vertex transmits
    # every round, every silent clique vertex hears ≥ 2 neighbours, and
    # nothing further is ever delivered — the all-collide catastrophe.
    flood = Scenario.from_string(
        "cplus(64) | flooding | classic | trials=64 | seed=7 "
        "| max_rounds=32 | engine=bitset | telemetry=on"
    )
    fbatch = flood.run()
    ftel = RoundTelemetry.from_batch(fbatch)
    wasted = ftel.wasted_transmissions.sum() / ftel.transmitters.sum()
    print(f"\nflooding on cplus(64): completion {fbatch.completion_rate:.0%}, "
          f"mean collision rate {ftel.mean_collision_rate():.3f}, "
          f"wasted transmissions {wasted:.1%}")
    show_rounds(ftel, limit=4)

    # The same rounds stream as JSONL events — the `repro obs summary`
    # sink format — alongside spans from the runtime layer.
    with tempfile.TemporaryDirectory() as root:
        sink = f"{root}/trace.jsonl"
        with recording(sink=sink) as rec:
            traced = decay.run()
            for event in telemetry_events(
                RoundTelemetry.from_batch(traced), scenario=decay.describe()
            ):
                rec.record(event)
        events = read_jsonl(sink)
        summary = summarize_events(events)
        spans = ", ".join(sorted(summary["spans"]))
        print(f"\ntraced rerun: {len(events)} events -> spans [{spans}], "
              f"pooled collision rate "
              f"{summary['telemetry']['collision_rate']:.3f}")


if __name__ == "__main__":
    main()
