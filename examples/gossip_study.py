"""k-source gossip across graph families — the workload layer at work.

The paper's wireless-expansion guarantee bounds how fast *any* informed
set grows, not just a single source's. The workload segment makes that
concrete: the same graph/protocol/channel configuration runs broadcast,
k-source gossip, or in-network aggregation by swapping one spec segment.

This study sweeps ``gossip(k)`` over an expander and the Section 5
lower-bound chain: at ``k = 1`` the expander wins outright; as ``k``
grows, the random sources chop the chain's diameter into short segments
and the gap narrows — extra sources substitute for expansion.

Run:  python examples/gossip_study.py
"""

import numpy as np

from repro.scenario import Scenario

FAMILIES = {
    "expander": "random_regular(256, 8)",
    "chain": "chain(16, 4)",
}
KS = (1, 2, 4, 8, 16)


def main() -> None:
    # A workload-bearing spec is one string; k is just a spec override.
    base = {
        label: Scenario.from_string(
            f"{graph} | decay | classic | gossip(k=1) | trials=32 | seed=0"
        )
        for label, graph in FAMILIES.items()
    }
    print("mean gossip rounds (32 trials, Decay, classic channel)\n")
    print(f"{'k':>4} | {'expander':>9} | {'chain':>9} | chain/expander")
    print("-" * 46)
    for k in KS:
        means = {}
        for label, sc in base.items():
            batch = sc.with_overrides({"workload": f"gossip(k={k})"}).run()
            assert batch.completion_rate == 1.0
            means[label] = float(batch.rounds.mean())
        ratio = means["chain"] / means["expander"]
        print(f"{k:>4} | {means['expander']:>9.1f} | {means['chain']:>9.1f} "
              f"| {ratio:.2f}x")

    # Each trial draws its own k sources; the batch records the draw.
    batch = base["expander"].with_overrides(
        {"workload": "gossip(k=4)"}).run()
    sources = batch.extras["sources"]  # (k, trials)
    print(f"\nper-trial source draws, first 4 trials:\n"
          f"{np.sort(sources[:, :4], axis=0).T}")

    # Aggregation keeps the full separation at any k: every node's value
    # must reach everyone, so diameter cannot be short-circuited.
    for label, sc in base.items():
        agg = sc.with_overrides({"workload": "aggregate(op=max)"}).run()
        print(f"aggregate(op=max) on {label:>8}: "
              f"mean {float(agg.rounds.mean()):7.1f} rounds, "
              f"exact max reached in all {agg.trials} trials")


if __name__ == "__main__":
    main()
