"""Quickstart for the experiment service (E21).

The whole serving loop in one process: a persistent ``JobQueue``, a
``ServiceServer`` on an ephemeral port, a worker draining the queue with
trial-shard checkpoints, and a ``ServiceClient`` submitting scenario
specs over HTTP and following the server-sent event stream. The same
loop runs across processes as ``repro serve`` + ``repro submit``.

Run:  python examples/service_quickstart.py
"""

import tempfile
import threading

from repro.runtime import ResultStore
from repro.service import JobQueue, ServiceClient, Worker, create_server

SPEC = "margulis(8) | decay | erasure(0.1) | gossip(k=16) | trials=32 | seed=7"


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        # The persistent pieces: a SQLite-backed queue (WAL, schema-
        # versioned) and the content-addressed result store.
        queue = JobQueue(f"{root}/jobs.db")
        store = ResultStore(f"{root}/cache")

        # The API server — stdlib http.server on an ephemeral port.
        server = create_server(queue, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(server.url)
        print(f"service: {server.url}  (queue schema "
              f"v{queue.schema_version()})")

        # A worker: leases jobs under a heartbeat, computes trial shards,
        # checkpoints each into the store. `repro serve --workers N` runs
        # these as processes; a thread shows the same loop.
        worker = Worker(queue, store=store, shard_trials=8)
        threading.Thread(
            target=lambda: worker.run(max_jobs=1, idle_timeout=10),
            daemon=True,
        ).start()

        # Submit over HTTP and follow the stream: shard events as partial
        # results land, then the result summary and the terminal event.
        job, created = client.submit(SPEC)
        print(f"\nsubmitted: job {job['id']} (created={created})")
        for kind, payload in client.stream(job["id"], timeout=60):
            if kind == "shard":
                print(f"  shard {payload['shard']}/{payload['shards']}: "
                      f"{payload['trials_done']}/{payload['trials']} trials, "
                      f"mean_rounds={payload['mean_rounds']:.1f}")
            elif kind == "result":
                print(f"  result: completion_rate="
                      f"{payload['completion_rate']:.2f}")
            elif kind == "done":
                print("  done")

        # Spec-equal resubmission dedupes to the same content-addressed
        # row — no new job, no recompute.
        again, created = client.submit(SPEC)
        print(f"\nresubmitted: job {again['id']} (created={created}, "
              f"state={again['state']}) — same row, served from cache")

        # A fresh queue sharing the store shows the warm-worker path: the
        # job executes as a pure cache replay (cache_hit=True).
        queue2 = JobQueue(f"{root}/jobs2.db")
        warm_job, _ = queue2.submit(SPEC)
        Worker(queue2, store=store, shard_trials=8).run_once()
        record = queue2.get(warm_job.id)
        print(f"fresh queue, same store: state={record.state}, "
              f"cache_hit={record.cache_hit}")

        # The pooled observability surface.
        metrics = client.metrics()
        print(f"\nmetrics: jobs={metrics['jobs']}, "
              f"queue_depth={metrics['queue_depth']}")
        server.shutdown()


if __name__ == "__main__":
    main()
