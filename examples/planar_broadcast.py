"""Low-arboricity graphs: where wireless expansion is free.

The paper's corollary: since the Theorem 1.1 penalty is logarithmic in
``min{Δ/β, Δ·β} ≤ arboricity``-ish, planar-like graphs lose only a
*constant* — "radio broadcast in low arboricity graphs can be done much
more efficiently than what was previously known!".  This example measures
it: wireless/ordinary expansion ratios on grids and trees stay flat as the
graphs grow, and spokesman-scheduled broadcast beats Decay.

Run:  python examples/planar_broadcast.py
"""

import numpy as np

from repro.analysis import render_table
from repro.expansion import expansion_of_set
from repro.graphs import arboricity, complete_binary_tree, degeneracy, grid_2d
from repro.radio import DecayProtocol, SpokesmanBroadcastProtocol, run_broadcast
from repro.spokesman import wireless_lower_bound_of_set


def main() -> None:
    gen = np.random.default_rng(7)
    rows = []
    for name, g in [
        ("grid 6x6", grid_2d(6, 6)),
        ("grid 12x12", grid_2d(12, 12)),
        ("grid 20x20", grid_2d(20, 20)),
        ("binary tree h=6", complete_binary_tree(6)),
        ("binary tree h=9", complete_binary_tree(9)),
    ]:
        eta = arboricity(g) if g.n <= 60 else degeneracy(g)
        ratios = []
        for _ in range(6):
            size = int(gen.integers(max(2, g.n // 10), g.n // 4))
            subset = np.sort(gen.choice(g.n, size=size, replace=False))
            beta = expansion_of_set(g, subset)
            if beta == 0:
                continue
            bw, _ = wireless_lower_bound_of_set(g, subset, rng=gen)
            ratios.append(bw / beta)
        rows.append(
            [name, g.n, eta, f"{min(ratios):.2f}", f"{np.mean(ratios):.2f}"]
        )
    print(
        render_table(
            ["graph", "n", "arboricity<=", "min βw/β", "mean βw/β"],
            rows,
            title="wireless/ordinary expansion on low-arboricity graphs",
        )
    )
    print("\nratios stay ~constant as n grows: the log penalty is bounded")
    print("by the arboricity, exactly as the corollary promises.\n")

    g = grid_2d(16, 16)
    for proto in (DecayProtocol(), SpokesmanBroadcastProtocol()):
        res = run_broadcast(g, proto, source=0, seed=1)
        print(f"broadcast on grid 16x16 with {proto.name:10s}: "
              f"{res.rounds} rounds (diameter {g.diameter()})")


if __name__ == "__main__":
    main()
