"""Quickstart for the declarative scenario API.

One picklable spec layer from graph → protocol → channel → runtime: a
``Scenario`` is constructible from a compact string, round-trips
losslessly through its string/dict/pickle views, runs through the batched
engine with one call, and sweeps over its own fields with canonical spec
dicts as cache keys.

Run:  python examples/scenario_quickstart.py
"""

import tempfile

from repro.runtime import ParallelExecutor, ResultStore
from repro.scenario import Scenario, ScenarioSweep


def main() -> None:
    # One string names the whole configuration the paper's claims
    # quantify over: graph family, protocol, channel, trials, seed.
    sc = Scenario.from_string(
        "hypercube(8) | decay | erasure(0.1) | trials=64 | seed=0"
    )
    print(f"scenario:  {sc.describe()}")
    print(f"canonical: {sc.to_dict()}")

    # One entry point replaces the engine plumbing.
    batch = sc.run()
    med, p90, p99 = batch.round_quantiles()
    print(f"\n{batch.trials} trials: completion {batch.completion_rate:.2f}, "
          f"rounds median {med:.0f} / p90 {p90:.0f} / p99 {p99:.0f}")

    # Overrides make what-if questions one line each.
    classic = sc.with_overrides({"channel": "classic"}).run()
    print(f"classic channel for comparison: mean {classic.mean_rounds:.1f} "
          f"vs {batch.mean_rounds:.1f} under 10% erasure")

    # Sweeps range over *spec fields*; the pickled scenarios are the
    # parallel task payloads and their canonical dicts the cache keys.
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        sweep = ScenarioSweep(
            base=sc.with_overrides({"trials": 16}),
            grid={"channel.erasure_p": [0.0, 0.1, 0.2, 0.3]},
            repetitions=2,
            seed=0,
        )
        points = sweep.run(executor=ParallelExecutor(2), cache=store)
        print("\nerasure sweep (parallel, cached):")
        for pt in points[::2]:  # first repetition of each grid point
            p = pt.overrides["channel.erasure_p"]
            print(f"  p={p:<4} mean {pt.result['mean_rounds']:6.1f} rounds  "
                  f"completion {pt.result['completion_rate']:.2f}")
        replay = sweep.run(cache=store)  # warm: pure cache replay
        assert [p.result for p in replay] == [p.result for p in points]
        print(f"warm rerun: {store.hits} hits / "
              f"{store.misses} misses — bit-for-bit replay")


if __name__ == "__main__":
    # Guard required: ParallelExecutor spawns worker processes that
    # re-import this module.
    main()
