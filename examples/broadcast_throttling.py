"""Corollary 5.1 live: watching the core graph throttle a perfect scheduler.

A full-knowledge scheduler broadcasts from a root wired to all of ``S`` in
the Lemma 4.4 core graph.  On a clique the same scheduler finishes in one
round; on the core graph *no choice of transmitters* can inform more than
``2s`` of the ``s·log 2s`` right vertices per round, so completion takes
``≈ log(2s)/2`` extra rounds — the per-hop cost that compounds into the
``Ω(D·log(n/D))`` lower bound.

The second table contrasts the genie with the distributed Decay protocol,
whose ``--trials`` randomized runs are simulated in one batched call
(``run_broadcast_batch``) — the cheap way to get round-count quantiles.

Run:  python examples/broadcast_throttling.py [--trials 256]
"""

import argparse
import collections

import numpy as np

from repro.analysis import render_table
from repro.graphs import complete_graph
from repro.radio import (
    DecayProtocol,
    SpokesmanBroadcastProtocol,
    rooted_core_graph,
    run_broadcast,
    run_broadcast_batch,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=64,
        help="batched Decay trials per graph (default 64)")
    args = parser.parse_args()
    rows = []
    for s in (8, 16, 32, 64):
        graph, root, n_ids = rooted_core_graph(s)
        res = run_broadcast(graph, SpokesmanBroadcastProtocol(), source=root, seed=0)
        arrivals = res.first_informed_round[n_ids]
        per_round = collections.Counter(arrivals.tolist())
        worst = max(per_round.values())
        rows.append(
            [
                s,
                graph.n,
                res.rounds,
                worst,
                2 * s,
                f"{worst / n_ids.size:.3f}",
                f"{2 / np.log2(2 * s):.3f}",
            ]
        )
    print(
        render_table(
            [
                "s",
                "n",
                "rounds",
                "max new N/round",
                "cap 2s",
                "best frac/round",
                "2/log2s",
            ],
            rows,
            title="genie scheduler on the rooted core graph",
        )
    )

    rows = []
    for s in (8, 16, 32, 64):
        graph, root, _ = rooted_core_graph(s)
        genie = run_broadcast(
            graph, SpokesmanBroadcastProtocol(), source=root, seed=0
        )
        batch = run_broadcast_batch(
            graph, DecayProtocol(), trials=args.trials, source=root, seed=0
        )
        p50, p90 = batch.round_quantiles((0.5, 0.9))
        rows.append(
            [s, genie.rounds, round(batch.mean_rounds, 1), int(p50), int(p90),
             f"{batch.completion_rate:.2f}"]
        )
    print()
    print(
        render_table(
            ["s", "genie rounds", "decay mean", "p50", "p90", "completion"],
            rows,
            title=f"genie vs Decay over {args.trials} batched trials",
        )
    )

    clique = complete_graph(129)
    res = run_broadcast(clique, SpokesmanBroadcastProtocol(), source=0, seed=0)
    print(f"\ncontrast: clique n=129 -> genie completes in {res.rounds} round(s)")
    print("The core graph throttles ANY schedule to a 2/log(2s) fraction of N")
    print("per round (Lemma 4.4(5)) — that is Corollary 5.1, and chaining")
    print("D/2 copies yields the Ω(D·log(n/D)) broadcast lower bound.")


if __name__ == "__main__":
    main()
