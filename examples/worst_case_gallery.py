"""Theorem 1.2 in action: planting a wireless-expansion trap in an expander.

Takes a healthy random regular expander, plugs in the Section 4.3.3
generalized core, and shows the planted set ``S*``: ordinary expansion
``β/ε`` (excellent) but wireless expansion capped a full ``log`` factor
below — no transmission schedule can work around it.

Run:  python examples/worst_case_gallery.py
"""

import math

from repro import random_regular, worst_case_expander
from repro.analysis import render_table
from repro.expansion import expansion_of_set
from repro.spokesman import wireless_lower_bound_of_set


def main() -> None:
    # The regime needs ε² ≥ 2e·β/Δ, so a high-degree base: Δ = 128, β = 2
    # admits any ε ≥ 0.30.
    base = random_regular(512, 128, rng=1)
    print(f"base expander: n={base.n}, Δ={base.max_degree} (assumed β = 2)\n")

    rows = []
    for eps in (0.30, 0.38, 0.45):
        wc = worst_case_expander(base, beta=2.0, epsilon=eps, rng=2)
        ordinary = expansion_of_set(wc.graph, wc.planted_set)
        cap = wc.planted_wireless_expansion_cap
        achieved, _ = wireless_lower_bound_of_set(wc.graph, wc.planted_set, rng=3)
        core = wc.core
        log_term = math.log2(
            min(core.max_degree / core.expansion,
                core.max_degree * core.expansion)
        )
        rows.append(
            [
                eps,
                core.mode,
                f"{core.s}x{core.multiplier}",
                wc.planted_set.size,
                f"{ordinary:.2f}",
                f"{achieved:.2f}",
                f"{cap:.2f}",
                f"{ordinary / cap:.2f}",
                f"{log_term:.2f}",
            ]
        )
    print(
        render_table(
            [
                "ε",
                "core",
                "s x k",
                "|S*|",
                "β(S*)",
                "βw achieved",
                "βw cap",
                "gap",
                "log-term",
            ],
            rows,
            title="planted worst-case sets",
        )
    )
    print("\nThe gap column tracks the log-term: ordinary expansion survives")
    print("the plug (Claim 4.9) while wireless expansion drops by the")
    print("Theorem 1.2 factor — no scheduler can beat the cap (Lemma 4.6).")


if __name__ == "__main__":
    main()
