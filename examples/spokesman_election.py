"""Spokesman election (Section 4.2.1): algorithms vs the exact optimum.

Builds the Lemma 4.4 core graph — the instance on which the spokesman
problem is provably hardest — and races every algorithm in the library
against the brute-force optimum and the Chlamtac–Weinstein ``|N|/log|S|``
reference line.

Run:  python examples/spokesman_election.py [s]
"""

import math
import sys

from repro import core_graph, spokesman_exact, spokesman_portfolio
from repro.analysis import render_table


def main(s: int = 16) -> None:
    gs = core_graph(s)
    print(
        f"core graph s={s}: |S|={gs.n_left}, |N|={gs.n_right}, "
        f"left degree {2 * s - 1}"
    )

    opt = spokesman_exact(gs) if s <= 20 else None
    best, results = spokesman_portfolio(gs, rng=0)
    cw_line = gs.n_right / math.log2(gs.n_left) if gs.n_left >= 3 else float("nan")

    rows = []
    for name in sorted(results):
        r = results[name]
        rows.append(
            [
                name,
                r.unique_count,
                f"{r.unique_fraction:.3f}",
                r.subset.size,
            ]
        )
    if opt is not None:
        rows.append(["EXACT OPTIMUM", opt.unique_count,
                     f"{opt.unique_fraction:.3f}", opt.subset.size])
    print(render_table(["algorithm", "|Γ¹_S(S')|", "fraction of N", "|S'|"], rows))
    print(f"\nCW guarantee line |N|/log2|S| = {cw_line:.1f}")
    print(f"Lemma 4.4(5) cap: 2s = {2 * s}")
    print(f"portfolio best: {best.algorithm} with {best.unique_count}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
