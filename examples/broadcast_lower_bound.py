"""Section 5: watching the Ω(D·log(n/D)) broadcast lower bound appear.

Chains core graphs, runs the Decay protocol, and prints per-hop round costs
(the ``R_i`` of the paper's proof) plus the scaling of total rounds against
the ``D·log₂(n/D)`` yardstick.

Run:  python examples/broadcast_lower_bound.py
"""

from repro.analysis import fit_loglinear, render_table, summarize
from repro.radio import DecayProtocol, measure_chain_broadcast


def main() -> None:
    s = 8
    print(f"chains of core graphs with s = {s} (each hop costs Ω(log 2s))\n")

    rows = []
    xs, ys = [], []
    for layers in (2, 4, 8, 16):
        rounds = []
        hop_means = []
        for rep in range(5):
            m = measure_chain_broadcast(
                s, layers, DecayProtocol(), seed=10 + rep, chain_seed=20 + rep
            )
            rounds.append(m.rounds)
            hop_means.append(float(m.per_hop_rounds.mean()))
        stats = summarize(rounds)
        xs.append(m.km_bound)
        ys.append(stats.mean)
        rows.append(
            [
                layers,
                m.n,
                m.diameter_claim,
                f"{m.km_bound:.1f}",
                f"{stats.mean:.1f}",
                f"{summarize(hop_means).mean:.1f}",
            ]
        )
    print(
        render_table(
            ["layers", "n", "D", "D·log2(n/D)", "rounds", "rounds/hop"],
            rows,
        )
    )
    fit = fit_loglinear(xs, ys)
    print(
        f"\nrounds ≈ {fit.slope:.2f} · D·log2(n/D) {fit.intercept:+.1f}"
        f"   (R² = {fit.r_squared:.3f})"
    )
    print("-> broadcast time scales linearly in D·log(n/D), as the paper's")
    print("   lower bound (and Czumaj–Rytter's matching upper bound) predict.")


if __name__ == "__main__":
    main()
