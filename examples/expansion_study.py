"""Measure wireless expansion at scale and connect it to broadcast time.

The paper's headline empirical claim: graphs with good *wireless*
expansion ``βw`` broadcast fast, and the Section 5 chained-core network
is slow because its wireless expansion is poor.  The batched expansion
pipeline (E17) makes both sides of that pair one-liner measurements —
``ExpansionSpec`` estimates ``βw`` through the vectorized candidate
pipeline, ``Scenario`` runs the broadcast, and both are cached by
canonical spec.

Run:  python examples/expansion_study.py
"""

import tempfile

from repro.expansion import ExpansionSpec
from repro.runtime import ResultStore
from repro.scenario import Scenario, expansion_summary, scenario_summary


def main() -> None:
    families = [
        "chain(8, 3)",        # built to broadcast slowly
        "hypercube(7)",       # bounded-degree expander
        "random_regular(128, 8)",  # near-Ramanujan w.h.p.
    ]
    estimator = ExpansionSpec.from_string("sampled(samples=60)")
    print(f"estimator: {estimator.describe()}  ->  {estimator.to_dict()}\n")
    print(f"{'family':24s} {'n':>4s} {'beta_w':>7s} {'bound':>6s} {'rounds':>7s}")
    for family in families:
        expansion = expansion_summary(family, estimator, seed=17)
        sim = scenario_summary(Scenario(graph=family, trials=16, seed=17))
        print(
            f"{family:24s} {expansion['n']:4d} "
            f"{expansion['beta_w']:7.3f} {expansion['bound']:>6s} "
            f"{sim['mean_rounds']:7.1f}"
        )

    # For graphs too wide for exact per-set enumeration, the spokesman
    # portfolio arm certifies lower bounds — bracketing the candidate
    # minimum from both sides.
    upper = expansion_summary(
        "random_regular(128, 8)", "sampled(samples=40)", seed=17
    )
    lower = expansion_summary(
        "random_regular(128, 8)", "portfolio(samples=40, max_set_bits=64)",
        seed=17,
    )
    print(
        f"\nrandom_regular(128, 8): "
        f"{lower['beta_w']:.3f} <= candidate min <= {upper['beta_w']:.3f}"
    )

    # Measurements are content-addressed like every other task: a warm
    # rerun of the same (graph, estimator, seed) triple is a pure replay.
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        spec = Scenario(graph="hypercube(7)").graph
        key = store.expansion_key(spec, estimator, seed=17)
        store.put(key, expansion_summary(spec, estimator, seed=17))
        store.get(key)
        print(f"cache replay: {store.hits} hits, {store.misses} misses")


if __name__ == "__main__":
    main()
