"""Array-backend study: the same seeded run on every installed backend
(E22, example-sized).

The dense engine's hot kernels — the neighbour-count matmul behind every
reception rule and the exact int64 delivered-value matmul behind the
value workloads — route through the :mod:`repro.backend` shim. Coins are
always drawn host-side from the shared counter RNG, so every backend
consumes identical per-trial streams and the seeded outcomes must agree;
the numpy host path is bit-for-bit the pre-backend engine. This example
runs one gossip scenario on each backend installed here, checks the
outcomes match, and times the two kernels per backend.

Without torch (``pip install 'wireless-expanders-repro[torch]'``) the
study is the one-backend numpy baseline — and asking for torch anyway
demonstrates the graceful fallback: one RuntimeWarning, then a host run.

Run:  python examples/backend_study.py
"""

import time
import warnings

import numpy as np

from repro.backend import available_backends, get_backend, resolve_backend
from repro.graphs import hypercube
from repro.radio.network import RadioNetwork
from repro.scenario import Scenario

SPEC = "hypercube(8) | decay | classic | gossip(k=4) | trials=64 | seed=22"
KERNEL_REPS = 5


def time_kernels(graph, backend) -> tuple[float, float]:
    """Milliseconds per count-matmul / value-matmul application."""
    rng = np.random.default_rng(0)
    transmitting = backend.asarray(rng.random((graph.n, 64)) < 0.5)
    values = backend.asarray(
        rng.integers(0, 1 << 20, size=(graph.n, 64)).astype(np.int64)
    )
    network = RadioNetwork(graph, backend=backend)
    network.transmit_counts(transmitting)   # build the lazy operators
    network.value_counts(values)
    backend.synchronize()
    t0 = time.perf_counter()
    for _ in range(KERNEL_REPS):
        network.transmit_counts(transmitting)
    backend.synchronize()
    counts_ms = (time.perf_counter() - t0) * 1000 / KERNEL_REPS
    t0 = time.perf_counter()
    for _ in range(KERNEL_REPS):
        network.value_counts(values)
    backend.synchronize()
    values_ms = (time.perf_counter() - t0) * 1000 / KERNEL_REPS
    return counts_ms, values_ms


def main() -> None:
    installed = available_backends()
    print("registered backends:",
          ", ".join(f"{k} ({'installed' if v else 'missing'})"
                    for k, v in sorted(installed.items())))

    # The same seeded scenario on every installed backend.
    host_batch = Scenario.from_string(SPEC).run()
    print(f"\n{SPEC}")
    print(f"  numpy: mean rounds {np.mean(host_batch.rounds):.1f}, "
          f"completion {host_batch.completion_rate:.0%}")
    for name, ok in sorted(installed.items()):
        if not ok or name == "numpy":
            continue
        batch = Scenario.from_string(f"{SPEC} | backend={name}").run()
        same = (np.array_equal(batch.rounds, host_batch.rounds)
                and np.array_equal(batch.transmissions,
                                   host_batch.transmissions))
        print(f"  {name}: mean rounds {np.mean(batch.rounds):.1f} — "
              f"outcomes {'identical to numpy' if same else 'DIVERGED'}")
        assert same

    # Per-kernel timing on a bigger graph.
    graph = hypercube(10)
    print(f"\nkernel timing on hypercube(10), T=64 "
          f"(avg over {KERNEL_REPS} applications):")
    print("  backend | counts ms | values ms")
    for name, ok in sorted(installed.items()):
        if not ok:
            continue
        counts_ms, values_ms = time_kernels(graph, get_backend(name))
        print(f"  {name:7s} | {counts_ms:9.3f} | {values_ms:9.3f}")

    # The graceful-degradation contract, demonstrated live.
    missing = [name for name, ok in sorted(installed.items()) if not ok]
    if missing:
        name = missing[0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = resolve_backend(name)
        print(f"\nasking for the missing '{name}' backend degrades to "
              f"{backend.name} with {len(caught)} RuntimeWarning — "
              "runs never fail for lack of an optional extra.")


if __name__ == "__main__":
    main()
