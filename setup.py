"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` as a fallback where ``pip install -e .`` cannot
build editable wheels (e.g. offline boxes with old setuptools).
"""

from setuptools import setup

setup()
