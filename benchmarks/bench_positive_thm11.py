"""E1 — Theorem 1.1: ordinary expanders are good wireless expanders.

For each graph family, take boundary sets ``S``, measure the *exact*
ordinary expansion ``β(S) = |Γ⁻(S)|/|S|`` and the *certified* wireless
expansion (spokesman-portfolio payoff / ``|S|``), and compare their ratio
against the theorem's shape ``1/log₂(2·min{Δ/β, Δ·β})``.  The claim to
reproduce: the measured ratio ``βw(S)/β(S)`` never falls below a fixed
constant times the shape, across families, sizes and degrees.
"""

import math

import numpy as np
from conftest import emit

from repro.analysis import render_table
from repro.expansion import expansion_of_set
from repro.graphs import grid_2d, hypercube, margulis_expander, random_regular
from repro.spokesman import wireless_lower_bound_of_set


def _cases():
    yield "hypercube(6)", hypercube(6)
    yield "hypercube(8)", hypercube(8)
    yield "random_regular(256,6)", random_regular(256, 6, rng=1)
    yield "random_regular(256,16)", random_regular(256, 16, rng=2)
    yield "random_regular(512,8)", random_regular(512, 8, rng=3)
    yield "margulis(12)", margulis_expander(12)
    yield "grid(16x16)", grid_2d(16, 16)


def positive_rows():
    gen = np.random.default_rng(42)
    rows = []
    for name, g in _cases():
        size = g.n // 4
        subset = np.sort(gen.choice(g.n, size=size, replace=False))
        beta = expansion_of_set(g, subset)
        bw, _ = wireless_lower_bound_of_set(g, subset, rng=gen)
        delta = g.max_degree
        shape = 1.0 / math.log2(2 * min(delta / beta, delta * beta))
        rows.append(
            [
                name,
                g.n,
                delta,
                round(beta, 4),
                round(bw, 4),
                round(bw / beta, 4),
                round(shape, 4),
                round((bw / beta) / shape, 3),
            ]
        )
    return rows


HEADERS = [
    "graph",
    "n",
    "Δ",
    "β(S)",
    "βw(S)>=",
    "βw/β",
    "shape 1/log",
    "const=ratio/shape",
]


def test_e1_positive_theorem11(benchmark, results_dir):
    rows = benchmark.pedantic(positive_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E1_positive_thm11.txt",
        render_table(HEADERS, rows, title="E1 / Theorem 1.1: βw vs β"),
    )
    consts = [row[-1] for row in rows]
    # Shape check: the implied constant is bounded below uniformly
    # (Theorem 1.1 promises Ω(shape); empirically the constant is ≥ ~1/9).
    assert min(consts) >= 1 / 9
    # And the wireless loss never exceeds the ordinary expansion.
    for row in rows:
        assert row[4] <= row[3] + 1e-9


def test_e1_portfolio_speed(benchmark):
    g = hypercube(7)
    gen = np.random.default_rng(0)
    subset = np.sort(gen.choice(g.n, size=g.n // 4, replace=False))

    def run():
        bw, _ = wireless_lower_bound_of_set(g, subset, rng=1)
        return bw

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
