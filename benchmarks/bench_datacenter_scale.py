"""E18 — datacenter-scale broadcast: packed-bitset engine vs dense.

The bitset backend packs 64 trials per uint64 word and replaces the dense
engine's sparse ``(n, T)`` integer products with CSR neighbour-word
gathers and popcounts (:mod:`repro.radio.bitset`).  This bench pins the
two claims the engine was built for, on a ``n = 10^5`` random 16-regular
expander at ``T = 64`` Decay trials:

* **memory** — the engine working set (traced allocation peak minus the
  result arrays both engines must hand back) shrinks ``≥ 5×``;
* **throughput** — the *reception step* (the per-round kernel the engine
  swaps out: dense sparse ``(n, T)`` matvecs vs CSR neighbour-word
  gathers + popcount) advances rounds ``≥ 3×`` faster, measured by
  clocking each engine's channel-deliver calls in place.

End-to-end wall time is reported (and its ratio asserted as a looser
regression floor): both engines pay the *identical* counter-based coin
hash per round — that sharing is the bit-for-bit contract — so the
full-run ratio is the reception gain diluted by the common RNG cost.

Both runs are asserted bit-for-bit identical first (the equivalence
contract ``tests/radio/test_bitset_engine.py`` pins in detail), so the
comparison is between two implementations of the same computation.  An
optional ``REPRO_BENCH_XL=1`` tier repeats the bitset run at ``n = 10^6``.
"""

import os
import time
import tracemalloc

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import render_table
from repro.graphs import random_regular
from repro.radio import DecayProtocol, MemoryBudget, run_broadcast_batch
from repro.radio.channel import ClassicCollision


class _TimedClassic(ClassicCollision):
    """Classic collision channel that clocks its own deliver calls.

    Results are bit-for-bit those of :class:`ClassicCollision`; the only
    addition is ``step_seconds``, the summed wall time of the reception
    kernel (dense ``deliver`` / packed ``deliver_words``).
    """

    def __init__(self) -> None:
        super().__init__()
        self.step_seconds = 0.0

    def deliver(self, round_index, transmitting, network):
        t0 = time.perf_counter()
        out = super().deliver(round_index, transmitting, network)
        self.step_seconds += time.perf_counter() - t0
        return out

    def deliver_words(self, round_index, transmit_words, network):
        t0 = time.perf_counter()
        out = super().deliver_words(round_index, transmit_words, network)
        self.step_seconds += time.perf_counter() - t0
        return out

N_SCALE = scaled(100_000, 10_000)
DEGREE = 16
TRIALS = 64
SEED = 7
XL = os.environ.get("REPRO_BENCH_XL", "0") not in ("", "0")

HEADERS = [
    "engine",
    "n",
    "trials",
    "rounds",
    "wall s",
    "step s",
    "steps/s",
    "peak MiB",
    "overhead MiB",
]

_RESULT_FIELDS = (
    "rounds",
    "completed",
    "informed_per_round",
    "first_informed_round",
    "transmissions",
)


def _result_bytes(batch) -> int:
    """Bytes of the arrays every engine must return regardless of backend
    (dominated by the ``(n, T)`` int64 first-informed matrix)."""
    return sum(getattr(batch, f).nbytes for f in _RESULT_FIELDS)


def _batches_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, f), getattr(b, f)) for f in _RESULT_FIELDS
    )


def _measure(graph, engine):
    """One engine's (batch, wall s, reception-step s, peak, overhead bytes).

    Timing and memory are separate runs — tracemalloc's bookkeeping slows
    the traced pass severalfold, so it must not pollute the clock.  The
    timing run's channel is :class:`_TimedClassic`, so the reception
    kernel's share of the wall comes out of the same measured run.
    """
    kwargs = dict(trials=TRIALS, seed=SEED, engine=engine)
    channel = _TimedClassic()
    t0 = time.perf_counter()
    batch = run_broadcast_batch(graph, DecayProtocol(), channel=channel, **kwargs)
    wall = time.perf_counter() - t0
    step_s = channel.step_seconds
    tracemalloc.start()
    traced = run_broadcast_batch(graph, DecayProtocol(), **kwargs)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert _batches_equal(batch, traced)
    overhead = max(1, peak - _result_bytes(traced))
    return batch, wall, step_s, peak, overhead


def _row(engine, graph, batch, wall, step_s, peak, overhead):
    steps = int(batch.rounds.sum())
    return [
        engine,
        graph.n,
        TRIALS,
        int(batch.rounds.max()),
        round(wall, 3),
        round(step_s, 3),
        int(steps / wall),
        round(peak / 2**20, 1),
        round(overhead / 2**20, 1),
    ]


def test_e18_datacenter_scale(benchmark, results_dir):
    graph = random_regular(N_SCALE, DEGREE, rng=0)
    # Warm the lookup tables / lazy caches out of the measured runs.
    run_broadcast_batch(graph, DecayProtocol(), trials=2, seed=0, engine="bitset")

    def compare():
        dense = _measure(graph, "dense")
        bitset = _measure(graph, "bitset")
        return dense, bitset

    (dense, bitset) = benchmark.pedantic(compare, rounds=1, iterations=1)
    d_batch, d_wall, d_step, d_peak, d_over = dense
    b_batch, b_wall, b_step, b_peak, b_over = bitset
    assert _batches_equal(d_batch, b_batch), "engines diverged at scale"

    rows = [
        _row("dense", graph, *dense),
        _row("bitset", graph, *bitset),
    ]
    mem_ratio = d_over / b_over
    # Reception-step throughput: both engines run the identical round
    # sequence, so the kernel-time ratio is the per-round step speedup.
    step_ratio = d_step / b_step
    wall_ratio = d_wall / b_wall
    emit(
        results_dir,
        "E18_datacenter_scale.txt",
        render_table(
            HEADERS, rows,
            title=(
                f"E18 / datacenter scale: Decay on random_regular"
                f"({graph.n}, {DEGREE}), T={TRIALS} "
                f"[mem {mem_ratio:.1f}x, reception step {step_ratio:.1f}x, "
                f"wall {wall_ratio:.1f}x]"
            ),
        ),
        data={
            "headers": HEADERS,
            "rows": rows,
            "memory_overhead_ratio": mem_ratio,
            "step_throughput_ratio": step_ratio,
            "wall_ratio": wall_ratio,
        },
        engine="bitset",
    )
    if not SMOKE:
        assert mem_ratio >= 5.0, f"memory overhead ratio {mem_ratio:.1f} < 5"
        assert step_ratio >= 3.0, (
            f"reception-step throughput ratio {step_ratio:.1f} < 3"
        )
        # Looser end-to-end floor: the shared per-round coin hash (bit-
        # identical across engines by contract) dilutes the full-run gain.
        assert wall_ratio >= 2.0, f"end-to-end wall ratio {wall_ratio:.1f} < 2"


def test_e18_budget_sharding_identity(results_dir):
    """A tight MemoryBudget shards the batch into columns; the merged
    result must be bit-for-bit the unsharded one on both engines."""
    graph = random_regular(scaled(4096, 512), DEGREE, rng=1)
    for engine in ("dense", "bitset"):
        whole = run_broadcast_batch(
            graph, DecayProtocol(), trials=TRIALS, seed=SEED, engine=engine
        )
        budget = MemoryBudget(
            MemoryBudget._PER_TRIAL_NODE_BYTES[engine] * graph.n * 7
        )
        assert budget.max_trials(graph.n, engine) == 7  # forces 10 shards
        sharded = run_broadcast_batch(
            graph, DecayProtocol(), trials=TRIALS, seed=SEED,
            engine=engine, memory_budget=budget,
        )
        assert _batches_equal(whole, sharded), f"{engine} sharding diverged"


def test_e18_xl_tier(results_dir):
    """``REPRO_BENCH_XL=1``: the bitset engine at ``n = 10^6`` (bitset
    only — the dense working set at this size is the point of avoiding)."""
    if not XL:
        import pytest

        pytest.skip("set REPRO_BENCH_XL=1 for the n=10^6 tier")
    graph = random_regular(1_000_000, DEGREE, rng=0)
    batch, wall, step_s, peak, overhead = _measure(graph, "bitset")
    emit(
        results_dir,
        "E18_datacenter_xl.txt",
        render_table(
            HEADERS,
            [_row("bitset", graph, batch, wall, step_s, peak, overhead)],
            title="E18 / XL tier: bitset Decay at n=10^6",
        ),
        data={"n": graph.n, "wall_s": wall, "peak_bytes": peak},
        engine="bitset",
    )
    assert bool(batch.completed.all())
