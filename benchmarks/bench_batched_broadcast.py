"""E14 — engine: batched trial-vectorized simulation throughput.

Compares the cost of ``T`` broadcast trials run one at a time (the
pre-batching style: a Python loop over ``run_broadcast``) against one
``run_broadcast_batch`` call, on the paper's graph families at four-digit
vertex counts.  The acceptance bar is a ``≥ 5×`` speedup at ``T = 256`` on
a ~1024-vertex instance; the table also re-checks the engines agree
bit-for-bit on per-trial round counts (the equivalence contract the unit
tests pin in detail).
"""

import time

import numpy as np
from conftest import SMOKE, emit, scaled

from repro._util import as_rng, spawn_seeds
from repro.analysis import render_table
from repro.graphs import broadcast_chain, hypercube, random_regular
from repro.radio import DecayProtocol, run_broadcast, run_broadcast_batch

TRIALS = scaled(256, 16)
MASTER = 7
# Paper families around n = 1024 (smoke scale shrinks them; the speedup
# acceptance bar only applies at full scale): the Section 5 chain of
# cores, the hypercube, and a random regular expander.
FAMILIES = [
    ("chain", lambda: broadcast_chain(*scaled((16, 12), (8, 4)), rng=1).graph),
    ("hypercube", lambda: hypercube(scaled(10, 6))),
    ("random_regular", lambda: random_regular(scaled(1024, 128), 8, rng=0)),
]

HEADERS = [
    "family",
    "n",
    "trials",
    "loop s",
    "batch s",
    "speedup",
    "mean rounds",
    "equal",
]


def compare_rows():
    rows = []
    for name, build in FAMILIES:
        graph = build()
        run_broadcast_batch(graph, DecayProtocol(), trials=8, seed=0)  # warm-up
        t0 = time.perf_counter()
        batch = run_broadcast_batch(
            graph, DecayProtocol(), trials=TRIALS, seed=MASTER
        )
        batch_s = time.perf_counter() - t0
        seeds = spawn_seeds(as_rng(MASTER), TRIALS)
        t0 = time.perf_counter()
        looped = [
            run_broadcast(graph, DecayProtocol(), seed=seed) for seed in seeds
        ]
        loop_s = time.perf_counter() - t0
        equal = all(
            r.rounds == int(batch.rounds[t]) for t, r in enumerate(looped)
        )
        rows.append(
            [
                name,
                graph.n,
                TRIALS,
                round(loop_s, 3),
                round(batch_s, 3),
                round(loop_s / batch_s, 1),
                round(float(np.mean([r.rounds for r in looped])), 1),
                equal,
            ]
        )
    return rows


def test_e14_batched_speedup(benchmark, results_dir):
    rows = benchmark.pedantic(compare_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E14_batched_engine.txt",
        render_table(
            HEADERS, rows,
            title=f"E14 / engine: looped vs batched Decay trials (T={TRIALS})",
        ),
        data={"headers": HEADERS, "rows": rows, "trials": TRIALS},
    )
    for row in rows:
        assert row[-1], f"batched {row[0]} diverged from the looped runs"
    if not SMOKE:
        # The ≥ 5× acceptance bar on the ~1024-vertex instances.
        assert max(row[5] for row in rows) >= 5.0
        assert all(row[5] >= 3.0 for row in rows)
