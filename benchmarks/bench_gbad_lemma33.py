"""E4 — Lemma 3.3 (Figure 1): tightness of βu = 2β − Δ, and Remark 1.

Sweeps ``(Δ, β)`` over the lemma's regime ``Δ/2 ≤ β ≤ Δ``, computing the
exact unique expansion (must equal ``2β − Δ``, reaching 0 at ``β = Δ/2``)
and the exact wireless optimum (must stay ≥ ``max{2β − Δ, Δ/2}``) — the
separation that motivates the whole paper.
"""

from conftest import emit, scaled

from repro.analysis import render_table
from repro.expansion import (
    bipartite_expansion_exact,
    bipartite_unique_expansion_exact,
    max_unique_coverage_exact,
)
from repro.graphs import gbad, gbad_wireless_lower_bound

S = 6
GRID = scaled(
    [(4, 2), (4, 3), (4, 4), (6, 3), (6, 4), (6, 5), (8, 4), (8, 6), (8, 8)],
    [(4, 2), (4, 3), (6, 4)],
)


def gbad_rows():
    rows = []
    for delta, beta in GRID:
        g = gbad(S, delta, beta)
        b, _ = bipartite_expansion_exact(g)
        bu, _ = bipartite_unique_expansion_exact(g)
        best, _ = max_unique_coverage_exact(g)
        bw = best / S
        rows.append(
            [
                delta,
                beta,
                round(b, 3),
                round(bu, 3),
                2 * beta - delta,
                round(bw, 3),
                round(gbad_wireless_lower_bound(delta, beta), 3),
            ]
        )
    return rows


HEADERS = ["Δ", "β", "β exact", "βu exact", "2β-Δ", "βw exact", "max{2β-Δ,Δ/2}"]


def test_e4_gbad(benchmark, results_dir):
    rows = benchmark.pedantic(gbad_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E4_gbad_lemma33.txt",
        render_table(HEADERS, rows, title="E4 / Lemma 3.3 + Remark 1: Gbad"),
    )
    for delta, beta, b, bu, claim, bw, remark in rows:
        assert b == beta  # ordinary expansion is exactly β
        assert bu == claim  # unique expansion exactly 2β − Δ
        assert bw >= remark - 1e-9  # wireless survives (Remark 1)
        assert bw >= bu  # Observation 2.1


def test_e4_wireless_enumeration_speed(benchmark):
    g = gbad(12, 6, 4)

    def run():
        best, _ = max_unique_coverage_exact(g)
        return best

    assert benchmark(run) > 0
