"""E6 — Lemmas 4.6/4.7/4.8: generalized core graphs over a parameter grid.

For each target ``(Δ*, β*)`` the planner must return a graph meeting all
three Lemma 4.6 assertions; for the explicit boosted/diluted constructions,
the exact tree-DP optimum must respect the wireless caps.
"""

import math

from conftest import emit, scaled

from repro.analysis import render_table
from repro.graphs import (
    boosted_core,
    diluted_core,
    generalized_core,
    generalized_core_max_unique_coverage,
)

TARGETS = scaled(
    [(32, 2.0), (64, 4.0), (64, 1.0), (128, 8.0), (128, 0.75), (256, 2.0)],
    [(32, 2.0), (64, 1.0)],
)
S_SPEED = scaled(256, 32)


def generalized_rows():
    rows = []
    for delta_star, beta_star in TARGETS:
        gc = generalized_core(delta_star, beta_star)
        exact = generalized_core_max_unique_coverage(gc)
        rows.append(
            [
                delta_star,
                beta_star,
                gc.mode,
                gc.s,
                gc.multiplier,
                gc.graph.n_left,
                gc.graph.n_right,
                round(gc.expansion, 3),
                gc.max_degree,
                exact,
                gc.wireless_coverage_cap,
                round(gc.lemma46_wireless_fraction_cap, 4),
                round(exact / gc.graph.n_right, 4),
            ]
        )
    return rows


HEADERS = [
    "Δ*",
    "β*",
    "mode",
    "s",
    "k",
    "|S*|",
    "|N*|",
    "β achieved",
    "Δ achieved",
    "max_unique",
    "cap",
    "frac_cap",
    "frac",
]


def test_e6_generalized_core(benchmark, results_dir):
    rows = benchmark.pedantic(generalized_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E6_generalized_core.txt",
        render_table(HEADERS, rows, title="E6 / Lemma 4.6: generalized cores"),
    )
    for row in rows:
        delta_star, beta_star = row[0], row[1]
        n_left, beta_ach, delta_ach = row[5], row[7], row[8]
        exact, cap, frac_cap, frac = row[9], row[10], row[11], row[12]
        assert n_left <= delta_star / 2 + 1e-9  # Lemma 4.6(1)
        assert beta_ach >= beta_star - 1e-9  # Lemma 4.6(2)
        assert delta_ach <= delta_star + 1e-9
        assert exact <= cap  # Lemmas 4.7(5)/4.8(5)
        assert frac <= frac_cap + 1e-9  # Lemma 4.6(3)


def test_e6_boosted_speed(benchmark):
    gc = benchmark.pedantic(
        lambda: boosted_core(S_SPEED, 4), rounds=1, iterations=1
    )
    assert gc.graph.n_right == S_SPEED * int(math.log2(2 * S_SPEED)) * 4


def test_e6_diluted_speed(benchmark):
    gc = benchmark.pedantic(
        lambda: diluted_core(S_SPEED, 4), rounds=1, iterations=1
    )
    assert gc.graph.n_left == S_SPEED * 4
