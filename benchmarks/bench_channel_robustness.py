"""E15 — robustness: broadcast degradation across channel & fault models.

The paper's machinery predicts that good wireless expanders keep informing
many new vertices per round even when conditions degrade, while the
worst-case families (the Section 5 chain of cores) have no slack.  Two
tables quantify that on the batched engine's channel layer:

* **erasure sweep** — Decay broadcast time on a random regular expander vs
  the chain, as the per-link erasure probability rises; the chain's
  relative slowdown should dominate the expander's.
* **jamming** — the same pair under adversarial jam windows covering a
  growing fraction of vertices during the opening rounds.

Both tables re-check the channel layer's anchor invariant: erasure with
``p = 0`` reproduces the classic collision model bit for bit.
"""

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import ERASURE_HEADERS, erasure_degradation, render_table
from repro.graphs import broadcast_chain, random_regular
from repro.radio import (
    AdversarialJamming,
    DecayProtocol,
    FaultSchedule,
    run_broadcast_batch,
)

TRIALS = scaled(64, 8)
MASTER = 11
ERASURE_PS = [0.0, 0.1, 0.2, 0.3]
JAM_FRACTIONS = [0.0, 0.1, 0.25]
JAM_ROUNDS = scaled(20, 6)
MAX_ROUNDS = 200_000


def families():
    n = scaled(512, 96)
    s = scaled(8, 4)
    layers = scaled(16, 4)
    return [
        ("expander", random_regular(n, 8, rng=1)),
        ("chain", broadcast_chain(s, layers, rng=1).graph),
    ]


def erasure_points():
    points = erasure_degradation(
        families(), ERASURE_PS, trials=TRIALS, seed=MASTER, max_rounds=MAX_ROUNDS
    )
    for pt in points:
        if pt.p == 0.0:
            # The channel layer's anchor invariant, at bench scale.
            assert (pt.batch.rounds == pt.baseline.rounds).all()
            assert (pt.batch.transmissions == pt.baseline.transmissions).all()
    return points


def jam_schedule(graph, fraction):
    count = int(round(fraction * graph.n))
    jammed = np.random.default_rng(5).choice(graph.n, size=count, replace=False)
    victims = tuple(int(v) for v in jammed if v != 0)
    if not victims:
        return FaultSchedule()
    return FaultSchedule(jam_windows=((0, JAM_ROUNDS - 1, victims),))


def jamming_rows():
    rows = []
    for name, graph in families():
        baseline = None
        for fraction in JAM_FRACTIONS:
            batch = run_broadcast_batch(
                graph,
                DecayProtocol(),
                trials=TRIALS,
                seed=MASTER,
                channel=AdversarialJamming(jam_schedule(graph, fraction)),
                max_rounds=MAX_ROUNDS,
            )
            if baseline is None:
                baseline = batch.mean_rounds
            rows.append(
                [
                    name,
                    graph.n,
                    fraction,
                    JAM_ROUNDS,
                    round(batch.completion_rate, 3),
                    round(batch.mean_rounds, 1),
                    round(batch.mean_rounds / baseline, 2),
                ]
            )
    return rows


def test_e15_erasure_degradation(benchmark, results_dir):
    points = benchmark.pedantic(erasure_points, rounds=1, iterations=1)
    emit(
        results_dir,
        "E15_channel_robustness.txt",
        render_table(
            ERASURE_HEADERS,
            [pt.row for pt in points],
            title=f"E15 / robustness: Decay under erasure (T={TRIALS})",
        ),
        data={
            "headers": ERASURE_HEADERS,
            "rows": [pt.row for pt in points],
            "trials": TRIALS,
        },
    )
    by_family = {}
    for pt in points:
        assert pt.batch.completion_rate == 1.0, (
            f"{pt.family} failed to complete at p={pt.p}"
        )
        by_family.setdefault(pt.family, {})[pt.p] = pt
    for family, grid in by_family.items():
        assert grid[0.0].slowdown == 1.0
        assert (
            grid[max(ERASURE_PS)].batch.mean_rounds
            >= grid[0.0].batch.mean_rounds
        ), f"{family}: erasure did not slow broadcast down"
    if not SMOKE:
        # Full scale only: the worst-case chain degrades strictly faster
        # than the expander — the E15 headline.
        assert (
            by_family["chain"][max(ERASURE_PS)].slowdown
            > by_family["expander"][max(ERASURE_PS)].slowdown
        )


def test_e15_jamming_degradation(results_dir):
    rows = jamming_rows()
    emit(
        results_dir,
        "E15_jamming.txt",
        render_table(
            ["family", "n", "jam frac", "jam rounds", "completion", "mean", "slowdown"],
            rows,
            title=f"E15 / robustness: Decay under jam windows (T={TRIALS})",
        ),
        data={"rows": rows, "trials": TRIALS},
    )
    for family, _, fraction, _, completion, _, slowdown in rows:
        assert completion == 1.0, f"{family} failed to complete at f={fraction}"
        assert np.isfinite(slowdown)
