"""E5 — Lemma 4.4 (Figure 2): the core graph property table.

Regenerates, for a sweep of ``s``, every quantity the lemma claims and the
exact values measured on the constructed graph.  The wireless-vs-ordinary
gap column is the paper's Theorem 1.2 separation appearing in the raw data.
"""

import math

from conftest import emit, scaled

from repro.analysis import render_table
from repro.graphs import (
    core_graph,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    core_graph_properties,
)

SIZES = scaled([2, 4, 8, 16, 32, 64, 128, 256], [2, 4, 8, 16])
S_SPEED = scaled(256, 32)
S_DP = scaled(4096, 256)


def core_graph_rows():
    rows = []
    for s in SIZES:
        g = core_graph(s)
        props = core_graph_properties(s)
        exp, _, _ = core_graph_min_expansion(s)
        cap = core_graph_max_unique_coverage(s)
        rows.append(
            [
                s,
                g.n_right,
                int(g.left_degrees[0]),
                g.max_right_degree,
                round(g.avg_right_degree, 3),
                round(props["avg_right_degree_bound"], 3),
                exp,
                props["expansion_lower_bound"],
                cap,
                2 * s,
                round(cap / g.n_right, 4),
                round(2 / math.log2(2 * s), 4),
            ]
        )
    return rows


HEADERS = [
    "s",
    "|N|",
    "deg_S",
    "max_deg_N",
    "avg_deg_N",
    "avg_bound",
    "min_expansion",
    "claim>=",
    "max_unique",
    "claim<=",
    "unique_frac",
    "frac_claim<=",
]


def test_e5_core_graph_properties(benchmark, results_dir):
    rows = benchmark.pedantic(core_graph_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E5_core_graph.txt",
        render_table(HEADERS, rows, title="E5 / Lemma 4.4: core graph"),
    )
    for row in rows:
        s = row[0]
        assert row[1] == s * int(math.log2(2 * s))  # claim (1)
        assert row[2] == 2 * s - 1  # claim (2)
        assert row[3] == s and row[4] <= row[5] + 1e-9  # claim (3)
        assert row[6] >= row[7] - 1e-9  # claim (4)
        assert row[8] <= row[9]  # claim (5)
        assert row[10] <= row[11] + 1e-12


def test_e5_construction_speed(benchmark):
    g = benchmark(core_graph, S_SPEED)
    assert g.n_left == S_SPEED


def test_e5_wireless_dp_speed(benchmark):
    cap = benchmark(core_graph_max_unique_coverage, S_DP)
    assert cap == 2 * S_DP - 1
