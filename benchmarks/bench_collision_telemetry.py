"""E20 — collision anatomy at scale via batched per-round telemetry.

The paper's round-complexity bounds are collision arguments: Decay makes
progress *because* its thinning schedule limits how often a silent node
hears two transmitters at once, and the Section 5 lower-bound topologies
are exactly the graphs where that cannot be arranged.  This bench turns
the observability layer's batched telemetry (``telemetry=on``) into the
reproduction table those arguments predict::

    random_regular(10000, 16) | decay | classic  | trials=64 | engine=bitset | telemetry=on
    chain(32, 8)              | decay | erasure(0.1) | ...
    cplus(512)                | flooding | classic | max_rounds=64 | ...

Pinned claims:

* **decay survives its own collisions** — on every family × channel the
  Decay scenarios complete, with a collision rate strictly between 0 and
  1 (the schedule pays collisions but is never starved by them);
* **flooding anatomy** — flooding on C⁺ is the collision catastrophe the
  protocol comparison predicts: once the clique is informed every round
  collides at the spokesman's neighbours, completion stays 0 and the
  pooled collision rate is near 1;
* **telemetry invariants** — per round and trial, newly-informed counts
  never exceed receptions and wasted transmissions never exceed
  transmitters (checked on every cell of every scenario);
* **equivalence** — on a small shared-support scenario the five
  ``telemetry_`` extras are bit-for-bit identical between the dense and
  bitset engines (always asserted, smoke included).

The per-round pooled trajectories (collision and wasted rates summed
across trials) land in the ``.json`` sidecar, and the same rounds are
mirrored as JSONL telemetry events next to the table — the ``repro obs
summary`` sink format, which CI greps for ``collision``.
"""

import os

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import render_table
from repro.obs.telemetry import (
    TELEMETRY_FIELDS,
    RoundTelemetry,
    telemetry_events,
)
from repro.obs.tracing import write_jsonl
from repro.scenario import Scenario

TRIALS = scaled(64, 8)
SEED = 7

#: (label, graph segment) — the expander against the Section 5 topologies.
FAMILIES = (
    ("random_regular", scaled("random_regular(10000, 16)",
                              "random_regular(256, 8)")),
    ("chain", scaled("chain(32, 8)", "chain(8, 2)")),
    ("cplus", scaled("cplus(512)", "cplus(12)")),
)

CHANNELS = (("classic", "classic"), ("erasure", "erasure(0.1)"))

#: Flooding on C⁺: the all-collide anatomy row (bounded — it never ends).
ANATOMY_MAX_ROUNDS = 64

HEADERS = [
    "family", "channel", "protocol", "mean rounds", "collision rate",
    "wasted frac", "completion",
]


def _scenario(graph_seg, protocol, channel_seg, extra=""):
    return Scenario.from_string(
        f"{graph_seg} | {protocol} | {channel_seg} | trials={TRIALS} "
        f"| seed={SEED} | engine=bitset | telemetry=on{extra}"
    )


def _point(sc):
    batch = sc.run()
    return batch, RoundTelemetry.from_batch(batch)


def _wasted_fraction(tel):
    sent = float(tel.transmitters.sum())
    return float(tel.wasted_transmissions.sum()) / sent if sent else 0.0


def _row(family, channel, protocol, batch, tel):
    return [
        family, channel, protocol,
        round(float(batch.rounds.mean()), 1),
        round(tel.mean_collision_rate(), 3),
        round(_wasted_fraction(tel), 3),
        round(float(batch.completion_rate), 3),
    ]


def _pooled_trajectories(tel):
    """Per-round counts pooled across trials, plus pooled rates."""
    pooled = {
        name: getattr(tel, name).sum(axis=1).tolist()
        for name in TELEMETRY_FIELDS
    }
    contacted = tel.contacted.sum(axis=1)
    victims = tel.collision_victims.sum(axis=1)
    sent = tel.transmitters.sum(axis=1)
    wasted = tel.wasted_transmissions.sum(axis=1)
    pooled["collision_rate"] = np.divide(
        victims, contacted, out=np.zeros(len(victims)), where=contacted > 0
    ).round(4).tolist()
    pooled["wasted_rate"] = np.divide(
        wasted, sent, out=np.zeros(len(sent)), where=sent > 0
    ).round(4).tolist()
    return pooled


def test_e20_collision_telemetry(benchmark, results_dir):
    def run_anatomy():
        table = {}
        for family, graph_seg in FAMILIES:
            for ch_label, ch_seg in CHANNELS:
                sc = _scenario(graph_seg, "decay", ch_seg)
                table[(family, ch_label, "decay")] = _point(sc)
        anatomy = _scenario(
            FAMILIES[-1][1], "flooding", "classic",
            extra=f" | max_rounds={ANATOMY_MAX_ROUNDS}",
        )
        table[("cplus", "classic", "flooding")] = _point(anatomy)
        return table

    table = benchmark.pedantic(run_anatomy, rounds=1, iterations=1)

    rows = [_row(*key, *table[key]) for key in table]
    flood_batch, flood_tel = table[("cplus", "classic", "flooding")]
    emit(
        results_dir,
        "E20_collision_telemetry.txt",
        render_table(
            HEADERS, rows,
            title=(
                f"E20 / collision anatomy: T={TRIALS}, bitset telemetry "
                f"[flooding-on-C⁺ collision rate "
                f"{flood_tel.mean_collision_rate():.3f}, "
                f"completion {flood_batch.completion_rate:.0%}]"
            ),
        ),
        data={
            "headers": HEADERS,
            "rows": rows,
            "trajectories": {
                "|".join(key): _pooled_trajectories(tel)
                for key, (_, tel) in table.items()
            },
        },
        engine="bitset",
    )
    # Mirror the rounds as JSONL telemetry events — the same records the
    # tracing sinks and `repro obs summary` consume (CI greps this file).
    events = []
    for key, (_, tel) in table.items():
        events.extend(telemetry_events(tel, scenario="|".join(key)))
    write_jsonl(
        os.path.join(results_dir, "E20_collision_telemetry.jsonl"), events
    )

    for key, (batch, tel) in table.items():
        # Structural invariants, every round × trial cell of every run.
        assert (tel.newly_informed <= tel.receptions).all(), key
        assert (tel.wasted_transmissions <= tel.transmitters).all(), key
    # Decay completes everywhere, paying a real but non-fatal collision
    # toll (0 < rate < 1 on the classic expander at full scale).
    for key, (batch, tel) in table.items():
        if key[2] != "decay":
            continue
        assert batch.completion_rate == 1.0, key
        assert tel.mean_collision_rate() < 1.0, key
    if not SMOKE:
        expander = table[("random_regular", "classic", "decay")][1]
        assert expander.mean_collision_rate() > 0.0
        # Flooding on C⁺: everyone transmits, the spokesman's side always
        # collides — completion 0 with a near-total collision rate.
        assert flood_batch.completion_rate == 0.0
        assert flood_tel.mean_collision_rate() >= 0.9, (
            flood_tel.mean_collision_rate()
        )
        # And almost every clique transmission reaches nobody new: the
        # wasted fraction is the energy-cost face of the same anatomy.
        assert _wasted_fraction(flood_tel) >= 0.9


def test_e20_engine_equivalence():
    """Dense and bitset telemetry agree bit for bit (smoke included)."""
    base = Scenario.from_string(
        "random_regular(256, 8) | decay | classic | trials=16 "
        f"| seed={SEED} | telemetry=on"
    )
    dense = base.with_overrides({"engine": "dense"}).run()
    bitset = base.with_overrides({"engine": "bitset"}).run()
    for name in TELEMETRY_FIELDS:
        key = "telemetry_" + name
        assert np.array_equal(dense.extras[key], bitset.extras[key]), name
    assert np.array_equal(dense.transmissions, bitset.transmissions)
