"""E8 — Section 4.2.1: spokesman election algorithm shoot-out.

On instances where the exact optimum is computable, every algorithm's
payoff is reported as a fraction of optimal, alongside the
Chlamtac–Weinstein reference line ``|N|/log₂|S|``.  The paper's claims to
reproduce: (a) the guaranteed algorithms never miss their bounds, (b) the
simple random sampler is competitive, (c) on core graphs the best
algorithms hit the true optimum while the CW line is far below it.
"""

import math

from conftest import emit

from repro.analysis import render_table
from repro.graphs import core_graph, gbad, random_bipartite, random_bipartite_regular
from repro.spokesman import spokesman_exact, spokesman_portfolio


def _instances():
    yield "core(8)", core_graph(8)
    yield "core(16)", core_graph(16)
    yield "gbad(8,6,4)", gbad(8, 6, 4)
    yield "gbad(10,4,2)", gbad(10, 4, 2)
    yield "rand(12,40,.25)", random_bipartite(12, 40, 0.25, rng=81)
    yield "rand(16,24,.2)", random_bipartite(16, 24, 0.2, rng=82)
    yield "regular(14,50,3)", random_bipartite_regular(14, 50, 3, rng=83)


def spokesman_rows():
    rows = []
    algo_names = None
    for name, gs in _instances():
        opt = spokesman_exact(gs).unique_count
        best, results = spokesman_portfolio(gs, rng=84)
        if algo_names is None:
            algo_names = sorted(results)
        cw = (
            gs.n_right / math.log2(gs.n_left) if gs.n_left >= 3 else float("nan")
        )
        row = [name, gs.n_right, opt, round(cw, 1)]
        for algo in algo_names:
            row.append(
                round(results[algo].unique_count / opt, 3) if opt else 1.0
            )
        rows.append(row)
    return rows, algo_names


def test_e8_spokesman_comparison(benchmark, results_dir):
    rows, algo_names = benchmark.pedantic(spokesman_rows, rounds=1, iterations=1)
    headers = ["instance", "|N|", "OPT", "CW line"] + [
        f"{a}/OPT" for a in algo_names
    ]
    emit(
        results_dir,
        "E8_spokesman.txt",
        render_table(headers, rows, title="E8 / Section 4.2.1: fraction of optimum"),
    )
    for row in rows:
        fractions = row[4:]
        # (a) nothing exceeds the optimum;
        assert all(f <= 1.0 + 1e-9 for f in fractions)
        # (b) the portfolio's best is within 2x of optimal everywhere here.
        assert max(fractions) >= 0.5
    # (c) core graphs: best algorithms reach the exact optimum.
    core_rows = [r for r in rows if r[0].startswith("core")]
    for row in core_rows:
        assert max(row[4:]) == 1.0


def test_e8_partition_speed(benchmark):
    from repro.spokesman import spokesman_partition

    gs = core_graph(128)
    res = benchmark.pedantic(
        lambda: spokesman_partition(gs), rounds=1, iterations=1
    )
    assert res.unique_count > 0


def test_e8_sampling_speed(benchmark):
    from repro.spokesman import spokesman_sampling

    gs = core_graph(256)
    res = benchmark.pedantic(
        lambda: spokesman_sampling(gs, rng=0), rounds=1, iterations=1
    )
    assert res.unique_count > 0
