"""E13 — the Section 4.2.1 application: broadcast schedules from spokesman
election.

Synthesizes static schedules (the Chlamtac–Weinstein pipeline with our
spokesman subroutine) for expanders, grids and the adversarial core-graph
gadget, verifies them against the collision semantics, and compares their
length with Decay's (randomized, distributed) completion time and the
diameter floor.
"""

from conftest import emit

from repro.analysis import render_table, summarize
from repro.graphs import grid_2d, hypercube, random_regular
from repro.radio import (
    DecayProtocol,
    rooted_core_graph,
    run_broadcast,
    synthesize_broadcast_schedule,
)


def _cases():
    yield "hypercube(6)", hypercube(6), 0
    yield "hypercube(8)", hypercube(8), 0
    yield "grid(12x12)", grid_2d(12, 12), 0
    yield "rr(128,6)", random_regular(128, 6, rng=131), 0
    yield "rr(256,8)", random_regular(256, 8, rng=132), 0
    g, root, _ = rooted_core_graph(32)
    yield "rooted-core(32)", g, root


def schedule_rows():
    rows = []
    for name, g, source in _cases():
        schedule = synthesize_broadcast_schedule(g, source=source)
        ok, _ = schedule.verify(g)
        decay_rounds = []
        for rep in range(3):
            res = run_broadcast(g, DecayProtocol(), source=source, seed=400 + rep)
            assert res.completed
            decay_rounds.append(res.rounds)
        diameter = g.eccentricity(source)
        rows.append(
            [
                name,
                g.n,
                diameter,
                schedule.length,
                ok,
                round(summarize(decay_rounds).mean, 1),
                round(schedule.length / diameter, 2),
            ]
        )
    return rows


HEADERS = [
    "graph",
    "n",
    "ecc(src)",
    "schedule len",
    "verified",
    "decay rounds",
    "len/ecc",
]


def test_e13_schedule_synthesis(benchmark, results_dir):
    rows = benchmark.pedantic(schedule_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E13_schedule_synthesis.txt",
        render_table(
            HEADERS, rows, title="E13 / §4.2.1 application: static schedules"
        ),
    )
    for row in rows:
        name, n, ecc, length, ok, decay, ratio = row
        assert ok  # every schedule verifies under collision semantics
        assert length >= ecc  # information cannot outrun the BFS depth
        # The centralized schedule beats the distributed randomized Decay.
        assert length <= decay


def test_e13_synthesis_speed(benchmark):
    g = random_regular(256, 8, rng=133)
    schedule = benchmark.pedantic(
        lambda: synthesize_broadcast_schedule(g, source=0),
        rounds=1,
        iterations=1,
    )
    assert schedule.length > 0
