"""E3 — Lemma 3.1: spectral relation between unique and ordinary expansion.

On random d-regular graphs, measure ``λ₂``, the exact ``βu`` and ``β``, and
verify ``β ≥ (1 − 1/d)·βu + (d − λ)(1 − α)/d``.
"""

from conftest import emit, scaled

from repro.analysis import render_table
from repro.expansion import lemma31_verify
from repro.graphs import hypercube, random_regular


def _cases():
    yield "Q3", hypercube(3), 0.5
    yield "Q4", hypercube(4), 0.5
    yield "rr(12,3)", random_regular(12, 3, rng=31), 0.5
    yield "rr(14,4)", random_regular(14, 4, rng=32), 0.5
    yield "rr(16,5)", random_regular(16, 5, rng=33), 0.25
    yield "rr(18,4)", random_regular(18, 4, rng=34), 0.3


def lemma31_rows():
    rows = []
    for name, g, alpha in _cases():
        report = lemma31_verify(g, alpha)
        rows.append(
            [
                name,
                g.n,
                report.d,
                round(report.lam, 4),
                alpha,
                round(report.beta_unique, 4),
                round(report.claimed_lower_bound, 4),
                round(report.beta_ordinary, 4),
                report.holds,
            ]
        )
    return rows


HEADERS = ["graph", "n", "d", "λ2", "α", "βu", "claim<=", "β", "holds"]


def test_e3_lemma31(benchmark, results_dir):
    rows = benchmark.pedantic(lemma31_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E3_spectral_lemma31.txt",
        render_table(HEADERS, rows, title="E3 / Lemma 3.1: spectral bound"),
    )
    assert all(row[-1] for row in rows)


def test_e3_eigensolver_speed(benchmark):
    from repro.expansion import second_eigenvalue

    g = random_regular(scaled(400, 64), 8, rng=35)
    lam = benchmark(second_eigenvalue, g)
    assert lam < 8
