"""E21 — experiment service: submission throughput and submit→done latency.

Load-tests the full service loop in-process: a live ``ServiceServer`` on
an ephemeral port, a pool of worker threads draining the queue, and a
client firing distinct scenario submissions over HTTP.  Measured twice —
**cold** (every job computes its trial shards) and **warm** (the result
store already holds every scenario, so jobs complete as pure cache
replays) — reporting sustained submissions/sec and p50/p99 submit→done
latency for each pass.

Acceptance bars: every job reaches ``done`` in both passes; the warm pass
performs zero shard computations (asserted via the ``METRICS`` registry,
the no-recompute contract); and warm p50 latency beats cold p50 (full
scale only — smoke runs keep the shape checks, not the performance bars).
"""

import threading
import time

from conftest import emit, scaled

from repro.analysis import render_table
from repro.obs.metrics import METRICS
from repro.runtime import ResultStore
from repro.service import JobQueue, ServiceClient, Worker, create_server

N_JOBS = scaled(24, 4)
N_WORKERS = scaled(4, 2)
TRIALS = scaled(16, 4)
SHARD_TRIALS = 8

HEADERS = ["pass", "jobs", "subs/sec", "p50 ms", "p99 ms", "shards computed",
           "cache hits"]


def _specs():
    # Distinct scenarios (seed varies) so cold really computes N_JOBS jobs.
    return [
        f"margulis(4) | decay | erasure(0.1) | gossip(k=4) "
        f"| trials={TRIALS} | max_rounds=12 | seed={seed}"
        for seed in range(N_JOBS)
    ]


def _percentile(sorted_values, q):
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def _run_pass(label, client, queue, store, specs):
    stop = threading.Event()

    def drain():
        worker = Worker(queue, store=store, shard_trials=SHARD_TRIALS,
                        poll_interval=0.005)
        while not stop.is_set():
            if worker.run_once() is None:
                time.sleep(worker.poll_interval)

    threads = [threading.Thread(target=drain, daemon=True)
               for _ in range(N_WORKERS)]
    for thread in threads:
        thread.start()

    computed0 = METRICS.get("service.shards.computed")
    hits0 = METRICS.get("service.jobs.cache_hits")
    latencies = []
    t0 = time.perf_counter()
    submitted = []
    for spec in specs:
        job, _ = client.submit(spec)
        submitted.append((job["id"], time.perf_counter()))
    submit_elapsed = time.perf_counter() - t0
    for job_id, at in submitted:
        client.wait(job_id, timeout=120.0, poll=0.005)
        latencies.append(time.perf_counter() - at)
    stop.set()
    for thread in threads:
        thread.join(timeout=5)

    assert all(job["state"] == "done" for job in
               (client.job(jid) for jid, _ in submitted)), label
    latencies.sort()
    return {
        "pass": label,
        "jobs": len(specs),
        "subs_per_sec": len(specs) / submit_elapsed,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "shards_computed": METRICS.get("service.shards.computed") - computed0,
        "cache_hits": METRICS.get("service.jobs.cache_hits") - hits0,
    }


def measure(tmp_path):
    store = ResultStore(tmp_path / "cache")
    rows = []
    for label in ("cold", "warm"):
        # A fresh queue per pass: warm resubmissions must re-execute (and
        # hit the store) rather than dedupe against the cold pass's rows.
        queue = JobQueue(tmp_path / f"{label}.db")
        server = create_server(queue, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=30.0)
            rows.append(_run_pass(label, client, queue, store, _specs()))
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return rows


def test_e21_service_load(benchmark, results_dir, tmp_path):
    rows = benchmark.pedantic(measure, args=(tmp_path,), rounds=1,
                              iterations=1)
    cold, warm = rows

    # The no-recompute contract: a warm service does zero shard work and
    # completes every job as a cache hit.
    assert cold["shards_computed"] > 0
    assert cold["cache_hits"] == 0
    assert warm["shards_computed"] == 0
    assert warm["cache_hits"] == warm["jobs"]

    if not scaled(False, True):  # performance bars at full scale only
        assert warm["p50_ms"] < cold["p50_ms"]

    table = render_table(
        HEADERS,
        [[r["pass"], r["jobs"], f"{r['subs_per_sec']:.0f}",
          f"{r['p50_ms']:.1f}", f"{r['p99_ms']:.1f}",
          r["shards_computed"], r["cache_hits"]] for r in rows],
        title="E21 service load: cold vs warm submit->done",
    )
    emit(results_dir, "E21_service_load.txt", table,
         data={"rows": rows, "workers": N_WORKERS,
               "shard_trials": SHARD_TRIALS})
