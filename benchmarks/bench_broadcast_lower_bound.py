"""E7 — Section 5: the Ω(D·log(n/D)) broadcast-time lower bound.

Two series:

* **chain scaling** — Decay-protocol broadcast time on chains of core
  graphs, against the ``D·log₂(n/D)`` yardstick: the fit must be linear
  with high R² (rounds ∝ D·log(n/D)), reproducing the Kushilevitz–Mansour
  shape the paper re-proves;
* **Corollary 5.1** — per-round newly-informed N-vertices on the rooted
  core graph never exceed ``2s``, for the genie scheduler (which dominates
  every distributed protocol).
"""

import collections

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import fit_loglinear, render_table, summarize
from repro.radio import (
    DecayProtocol,
    SpokesmanBroadcastProtocol,
    measure_chain_broadcast,
    rooted_core_graph,
    run_broadcast,
)

LAYERS = scaled([2, 4, 8, 16], [2, 4, 8])
S = 8
REPS = scaled(5, 2)


def chain_rows():
    rows = []
    xs, ys = [], []
    for layers in LAYERS:
        rounds = []
        for rep in range(REPS):
            m = measure_chain_broadcast(
                S,
                layers,
                DecayProtocol(),
                seed=100 + rep,
                chain_seed=200 + rep,
            )
            assert m.completed
            rounds.append(m.rounds)
        stats = summarize(rounds)
        km = m.km_bound
        xs.append(km)
        ys.append(stats.mean)
        rows.append(
            [
                layers,
                m.n,
                m.diameter_claim,
                round(km, 1),
                round(stats.mean, 1),
                round(stats.min, 1),
                round(stats.max, 1),
                round(stats.mean / km, 3),
            ]
        )
    fit = fit_loglinear(xs, ys)
    return rows, fit


HEADERS = [
    "layers",
    "n",
    "D",
    "D·log2(n/D)",
    "rounds mean",
    "min",
    "max",
    "rounds/bound",
]


def test_e7_chain_scaling(benchmark, results_dir):
    (rows, fit) = benchmark.pedantic(chain_rows, rounds=1, iterations=1)
    table = render_table(
        HEADERS, rows, title="E7 / Section 5: Decay rounds vs D·log2(n/D)"
    )
    table += (
        f"\nlinear fit: rounds ≈ {fit.slope:.3f}·bound + {fit.intercept:.1f}"
        f"  (R² = {fit.r_squared:.3f}, through-origin slope "
        f"{fit.slope_through_origin:.3f})"
    )
    emit(results_dir, "E7_broadcast_lower_bound.txt", table)
    assert fit.slope > 0
    if not SMOKE:
        # Statistical shape bars need the full sample sizes: rounds grow
        # linearly in D·log(n/D) (high R²) and monotonically in D.
        assert fit.r_squared > 0.9
        means = [row[4] for row in rows]
        assert all(a < b for a, b in zip(means, means[1:]))


def corollary51_rows():
    rows = []
    for s in scaled((8, 16, 32), (4, 8)):
        g, root, n_ids = rooted_core_graph(s)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=root, seed=5)
        assert res.completed
        arrivals = res.first_informed_round[n_ids]
        per_round = collections.Counter(arrivals.tolist())
        worst = max(per_round.values())
        frac_rounds = int(np.log2(2 * s)) // 2
        rows.append(
            [s, res.rounds, worst, 2 * s, round(worst / (2 * s), 3), frac_rounds]
        )
    return rows


C51_HEADERS = ["s", "rounds", "max new N/round", "cap 2s", "ratio", "i_max"]


def test_e7_corollary51(benchmark, results_dir):
    rows = benchmark.pedantic(corollary51_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E7_corollary51.txt",
        render_table(C51_HEADERS, rows, title="E7 / Corollary 5.1: per-round cap"),
    )
    for row in rows:
        assert row[2] <= row[3]


def test_e7_decay_round_speed(benchmark):
    from repro.graphs import broadcast_chain

    chain = broadcast_chain(*scaled((16, 8), (8, 4)), rng=1)

    def run():
        from repro.radio import run_broadcast

        return run_broadcast(
            chain.graph, DecayProtocol(), source=chain.root, seed=2
        ).rounds

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
