"""E9 — Appendix A: every deterministic guarantee, measured margin.

For each workload and each algorithm, report ``measured / guaranteed``
(must be ≥ 1 everywhere) plus the portfolio's Corollary A.16 MG margin.
"""

import math

from conftest import emit

from repro.analysis import render_table
from repro.expansion import degree_class_guarantee, mg_bound
from repro.graphs import (
    boosted_core,
    core_graph,
    gbad,
    random_bipartite,
    random_bipartite_regular,
)
from repro.spokesman import (
    nonisolated_right_count,
    spokesman_degree_classes,
    spokesman_naive_greedy,
    spokesman_partition,
    spokesman_portfolio,
    spokesman_recursive,
    spokesman_threshold_partition,
    threshold_population,
)


def _instances():
    yield "core(32)", core_graph(32)
    yield "core(64)", core_graph(64)
    yield "boosted(16,3)", boosted_core(16, 3).graph
    yield "gbad(12,6,4)", gbad(12, 6, 4)
    yield "rand(30,60,.12)", random_bipartite(30, 60, 0.12, rng=91)
    yield "regular(40,120,4)", random_bipartite_regular(40, 120, 4, rng=92)


def guarantee_rows():
    rows = []
    for name, gs in _instances():
        gamma = nonisolated_right_count(gs)
        deg = gs.right_degrees
        delta_avg = float(deg[deg >= 1].mean())
        delta_max = int(deg.max())
        g_naive = gamma / gs.max_left_degree
        g_part = gamma / (8 * delta_avg)
        g_rec = gamma / (9 * math.log2(2 * delta_avg))
        g_dc = degree_class_guarantee(gamma, delta_max) if delta_max > 1 else 1.0
        # Threshold t = 4 (Corollary A.8 family): population m, bound m/(2tδ).
        t = 4.0
        m_pop = int(threshold_population(gs, t).sum())
        g_thr = m_pop / (2 * t * delta_avg)
        g_mg = gamma * mg_bound(max(delta_avg, 1.0))
        m_naive = spokesman_naive_greedy(gs).unique_count
        m_part = spokesman_partition(gs).unique_count
        m_rec = spokesman_recursive(gs).unique_count
        m_dc = spokesman_degree_classes(gs).unique_count
        m_thr = spokesman_threshold_partition(gs, t).unique_count
        best, _ = spokesman_portfolio(gs, rng=93)
        rows.append(
            [
                name,
                gamma,
                round(delta_avg, 2),
                round(m_naive / g_naive, 2),
                round(m_part / g_part, 2),
                round(m_rec / g_rec, 2),
                round(m_dc / g_dc, 2),
                round(m_thr / g_thr, 2),
                round(best.unique_count / g_mg, 2),
            ]
        )
    return rows


HEADERS = [
    "instance",
    "γ",
    "δ",
    "A.1 margin",
    "A.3 margin",
    "A.13 margin",
    "A.6 margin",
    "A.8 margin",
    "A.16 margin",
]


def test_e9_appendix_guarantees(benchmark, results_dir):
    rows = benchmark.pedantic(guarantee_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E9_appendix_guarantees.txt",
        render_table(
            HEADERS, rows, title="E9 / Appendix A: measured / guaranteed (≥ 1)"
        ),
    )
    for row in rows:
        margins = row[3:]
        assert all(m >= 1.0 - 1e-9 for m in margins), row


def test_e9_recursive_speed(benchmark):
    gs = core_graph(256)
    res = benchmark.pedantic(
        lambda: spokesman_recursive(gs), rounds=1, iterations=1
    )
    assert res.unique_count > 0
