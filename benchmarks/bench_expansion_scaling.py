"""E17 — expansion pipeline: βw vs broadcast rounds, and batched speedup.

Two tables:

* ``E17_expansion_vs_broadcast`` sweeps graph families (the Section 5
  chain, a hypercube, a random regular expander, and the Margulis
  expander) computing ``(β̂w, broadcast rounds)`` pairs per instance
  through the cached runtime machinery — the paper's headline empirical
  connection (good wireless expanders broadcast fast; the chained-core
  lower-bound network is slow *because* its expansion is poor).
* ``E17_expansion_speedup`` pins the batched candidate pipeline
  (:mod:`repro.expansion.pipeline`) against the retired serial estimator
  at n=200 / 100 candidate sets: **≥ 10×** at full scale, and bit-for-bit
  identical (value and witness) at every scale.
"""

import time

import numpy as np

from conftest import JOBS, SMOKE, emit, scaled

from repro.analysis import render_table, run_sweep
from repro.expansion import (
    wireless_expansion_sampled,
    wireless_expansion_sampled_serial,
)
from repro.graphs import random_regular
from repro.runtime import ParallelExecutor, ResultStore
from repro.runtime.tasks import wireless_expansion_point
from repro.scenario import Scenario, scenario_summary

MASTER = 17

#: (family spec, broadcast trials) per instance; order = table order.
FAMILIES = scaled(
    ["chain(8, 3)", "hypercube(7)", "random_regular(128, 8)", "margulis(6)"],
    ["chain(4, 2)", "hypercube(4)", "random_regular(32, 4)", "margulis(3)"],
)
ESTIMATOR = scaled("sampled(samples=60)", "sampled(samples=10)")
TRIALS = scaled(16, 4)

SPEED_N = scaled(200, 48)
SPEED_SAMPLES = scaled(100, 20)


def test_e17_expansion_vs_broadcast(benchmark, results_dir, tmp_path):
    store = ResultStore(tmp_path / "cache")
    executor = ParallelExecutor(JOBS) if JOBS > 1 else None

    def measure():
        points = run_sweep(
            {"graph": FAMILIES},
            wireless_expansion_point,
            seed=MASTER,
            static_params={"expansion": ESTIMATOR},
            executor=executor,
            cache=store,
        )
        rows = []
        for point in points:
            exp = point.result
            sim = scenario_summary(
                Scenario(graph=point.params["graph"], trials=TRIALS,
                         seed=MASTER)
            )
            rows.append(
                [point.params["graph"], exp["n"], round(exp["beta_w"], 3),
                 exp["bound"], round(sim["mean_rounds"], 1),
                 round(sim["completion_rate"], 3)]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        results_dir,
        "E17_expansion_vs_broadcast.txt",
        render_table(
            ["family", "n", "beta_w", "bound", "mean rounds", "completion"],
            rows,
            title=f"E17 / expansion vs broadcast ({ESTIMATOR}, "
                  f"trials={TRIALS})",
        ),
        data={"rows": rows, "estimator": ESTIMATOR, "seed": MASTER},
    )
    by_family = {row[0].split("(")[0]: row for row in rows}
    # The headline shape: expander families out-expand the Section 5
    # chain, and the chain (built to be slow) broadcasts slowest per
    # diameter class.  Only asserted at full scale — tiny instances are
    # shape checks, not statistics.
    assert all(row[5] == 1.0 for row in rows), "incomplete broadcasts"
    if not SMOKE:
        chain_beta = by_family["chain"][2]
        for family in ("hypercube", "random_regular", "margulis"):
            assert by_family[family][2] > chain_beta, (
                f"{family} should out-expand the chain: "
                f"{by_family[family][2]} vs {chain_beta}"
            )


def test_e17_batched_speedup(benchmark, results_dir):
    graph = random_regular(SPEED_N, 8, rng=0)

    def compare():
        t0 = time.perf_counter()
        serial = wireless_expansion_sampled_serial(
            graph, alpha=0.5, samples=SPEED_SAMPLES, rng=7,
            include_balls=False,
        )
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched = wireless_expansion_sampled(
            graph, alpha=0.5, samples=SPEED_SAMPLES, rng=7,
            include_balls=False,
        )
        t_batched = time.perf_counter() - t0
        return serial, batched, t_serial, t_batched

    serial, batched, t_serial, t_batched = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = t_serial / t_batched
    rows = [
        ["serial", round(t_serial, 3), 1.0, round(serial[0], 4)],
        ["batched", round(t_batched, 3), round(speedup, 1),
         round(batched[0], 4)],
    ]
    emit(
        results_dir,
        "E17_expansion_speedup.txt",
        render_table(
            ["estimator path", "seconds", "speedup", "beta_w"],
            rows,
            title=f"E17 / batched expansion pipeline "
                  f"(n={SPEED_N}, {SPEED_SAMPLES} candidates)",
        ),
        data={"rows": rows, "n": SPEED_N, "samples": SPEED_SAMPLES},
    )
    # The core contract at every scale: the batched pipeline reproduces
    # the serial estimator bit for bit (value and witness set).
    assert batched[0] == serial[0]
    assert np.array_equal(batched[1], serial[1])
    if not SMOKE:
        assert speedup >= 10.0, f"batched pipeline only {speedup:.1f}x"
