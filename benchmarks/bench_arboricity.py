"""E10 — the low-arboricity corollary (Section 1.2).

On planar / bounded-arboricity graphs the Theorem 1.1 penalty
``log min{Δ/β, Δβ} = O(log arboricity)`` is a constant — so the measured
wireless-to-ordinary ratio of random sets stays bounded below by a constant
independent of size, unlike the core-graph family where it decays as
``1/log``.
"""

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import render_table
from repro.expansion import expansion_of_set
from repro.graphs import (
    arboricity,
    complete_binary_tree,
    core_graph,
    degeneracy,
    grid_2d,
    random_recursive_tree,
    triangular_grid,
)
from repro.spokesman import spokesman_portfolio, wireless_lower_bound_of_set


def _low_arb_cases():
    yield "grid(8x8)", grid_2d(8, 8)
    if not SMOKE:
        yield "grid(16x16)", grid_2d(16, 16)
    yield "tri-grid", triangular_grid(*scaled((10, 10), (6, 6)))
    yield "binary-tree", complete_binary_tree(scaled(7, 5))
    yield "rec-tree", random_recursive_tree(scaled(200, 80), rng=101)


def arboricity_rows():
    gen = np.random.default_rng(102)
    rows = []
    for name, g in _low_arb_cases():
        eta = arboricity(g, exact_small_limit=0) if g.n <= 60 else degeneracy(g)
        ratios = []
        for _ in range(4):
            size = int(gen.integers(max(2, g.n // 10), g.n // 4))
            subset = np.sort(gen.choice(g.n, size=size, replace=False))
            beta = expansion_of_set(g, subset)
            if beta == 0:
                continue
            bw, _ = wireless_lower_bound_of_set(g, subset, rng=gen)
            ratios.append(bw / beta)
        rows.append(
            [
                name,
                g.n,
                g.max_degree,
                eta,
                round(min(ratios), 3),
                round(float(np.mean(ratios)), 3),
            ]
        )
    return rows


HEADERS = ["graph", "n", "Δ", "arboricity<=", "min βw/β", "mean βw/β"]


def test_e10_low_arboricity(benchmark, results_dir):
    rows = benchmark.pedantic(arboricity_rows, rounds=1, iterations=1)
    # Contrast row: the high-gap core-graph instance.
    gs = core_graph(64)
    best, _ = spokesman_portfolio(gs, rng=103)
    core_ratio = (best.unique_count / 64) / np.log2(128)
    table = render_table(
        HEADERS, rows, title="E10 / low arboricity: wireless ≈ ordinary"
    )
    table += (
        f"\ncontrast core(64): βw/β ≈ {core_ratio:.3f}"
        f" (decays as 1/log s by Theorem 1.2)"
    )
    emit(results_dir, "E10_arboricity.txt", table)
    # The claim: a uniform constant floor across the low-arboricity family.
    assert min(row[4] for row in rows) >= 0.25


def test_e10_degeneracy_speed(benchmark):
    g = grid_2d(*scaled((40, 40), (12, 12)))
    assert benchmark(degeneracy, g) == 2
