"""E16 — runtime: parallel executor scaling and warm-cache replay.

Runs the same ≥64-task chain-broadcast sweep four ways through
``run_sweep``: inline serial (the reference), ``ParallelExecutor`` at
``--jobs 4``, serial with a cold content-addressed cache, and a warm-cache
replay.  The acceptance bars are a ≥ 2.5× parallel speedup (full scale,
when ≥ 4 CPUs are actually available — the bar is recorded but not
asserted on smaller machines) and a ≥ 10× warm-over-cold replay; every
variant must reproduce the serial ``SweepPoint`` list bit for bit, which
is the runtime layer's core contract.
"""

import os
import time

from conftest import JOBS, SMOKE, emit, scaled

from repro.analysis import render_table, run_sweep
from repro.runtime import ParallelExecutor, ResultStore

# The acceptance bar is stated at 4 workers; `repro run E16 --jobs N`
# (REPRO_JOBS) widens the pool beyond it.
PAR_JOBS = max(4, JOBS)
SPACE = {
    "s": scaled([2, 4, 8, 16], [2, 4]),
    "layers": scaled([2, 4, 6, 8], [2, 3]),
}
REPS = scaled(4, 2)  # 16 grid points x 4 reps = 64 tasks at full scale
TRIALS = scaled(256, 4)
MASTER = 11

HEADERS = ["mode", "tasks", "seconds", "speedup", "equal"]


def _cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux


def _sweep(executor=None, cache=None):
    from repro.runtime.tasks import chain_broadcast_point

    return run_sweep(
        SPACE,
        chain_broadcast_point,
        seed=MASTER,
        repetitions=REPS,
        static_params={"trials": TRIALS},
        executor=executor,
        cache=cache,
    )


def compare(cache_root):
    timings = {}

    def timed(label, **kwargs):
        t0 = time.perf_counter()
        points = _sweep(**kwargs)
        timings[label] = time.perf_counter() - t0
        return points

    serial = timed("serial")
    parallel = timed(f"parallel -j{PAR_JOBS}", executor=ParallelExecutor(PAR_JOBS))
    store = ResultStore(cache_root)
    cold = timed("serial + cold cache", cache=store)
    warm = timed("warm cache replay", cache=store)
    variants = {
        f"parallel -j{PAR_JOBS}": parallel,
        "serial + cold cache": cold,
        "warm cache replay": warm,
    }
    rows = [["serial", len(serial), round(timings["serial"], 3), 1.0, True]]
    for label, points in variants.items():
        rows.append(
            [
                label,
                len(points),
                round(timings[label], 3),
                round(timings["serial"] / timings[label], 1),
                points == serial,
            ]
        )
    stats = store.stats()
    return rows, timings, store, stats


def test_e16_runtime_scaling(benchmark, results_dir, tmp_path):
    rows, timings, store, stats = benchmark.pedantic(
        compare, args=(tmp_path / "cache",), rounds=1, iterations=1
    )
    cpus = _cpus()
    emit(
        results_dir,
        "E16_runtime_scaling.txt",
        render_table(
            HEADERS,
            rows,
            title=(
                f"E16 / runtime: {rows[0][1]}-task sweep, serial vs parallel "
                f"vs cached (trials={TRIALS}, cpus={cpus})"
            ),
        ),
        data={"rows": rows, "cpus": cpus, "cache_entries": stats.entries},
    )
    # The core contract, asserted at every scale: parallel and cached runs
    # reproduce the serial SweepPoint list bit for bit.
    for row in rows:
        assert row[-1], f"{row[0]} diverged from the serial reference"
    # A ≥64-point sweep at full scale, and the warm replay touched no task:
    # every lookup hit (cold misses == warm hits == task count).
    assert rows[0][1] >= (64 if not SMOKE else 8)
    tasks = rows[0][1]
    assert store.misses == tasks and store.hits == tasks
    assert stats.entries == tasks
    if not SMOKE:
        warm_speedup = timings["serial + cold cache"] / timings["warm cache replay"]
        assert warm_speedup >= 10.0, f"warm cache only {warm_speedup:.1f}x"
        par_speedup = timings["serial"] / timings[f"parallel -j{PAR_JOBS}"]
        if cpus >= PAR_JOBS:
            # Near-linear scaling bar; only meaningful when the CPUs exist.
            assert par_speedup >= 2.5, f"parallel only {par_speedup:.1f}x"
