"""E11 — Observation 2.1 exactly: the β ≥ βw ≥ βu sandwich on small graphs,
and how tightly the polynomial algorithms track the exact wireless optimum.
"""

from conftest import emit, scaled

from repro.analysis import render_table, summarize
from repro.expansion import (
    unique_expansion_exact,
    vertex_expansion_exact,
    wireless_expansion_exact,
)
from repro.graphs import erdos_renyi
from repro.spokesman import wireless_lower_bound_of_set

N = 10
ALPHA = 0.5
SEEDS = list(range(scaled(8, 3)))


def sandwich_rows():
    rows = []
    for seed in SEEDS:
        g = erdos_renyi(N, 0.35, rng=seed)
        b, _ = vertex_expansion_exact(g, ALPHA)
        bw, witness = wireless_expansion_exact(g, ALPHA)
        bu, _ = unique_expansion_exact(g, ALPHA)
        # How close does the portfolio get on the worst set?
        if witness.size:
            algo, _ = wireless_lower_bound_of_set(g, witness, rng=seed)
        else:
            algo = float("nan")
        rows.append(
            [
                seed,
                round(b, 3),
                round(bw, 3),
                round(bu, 3),
                round(algo, 3),
                round(algo / bw, 3) if bw > 0 else 1.0,
            ]
        )
    return rows


HEADERS = ["seed", "β", "βw", "βu", "algo βw(S*)", "algo/exact"]


def test_e11_exact_sandwich(benchmark, results_dir):
    rows = benchmark.pedantic(sandwich_rows, rounds=1, iterations=1)
    ratios = [r[-1] for r in rows]
    table = render_table(
        HEADERS, rows, title="E11 / Observation 2.1: exact sandwich (n=10)"
    )
    stats = summarize(ratios)
    table += f"\nportfolio/exact on worst sets: mean {stats.mean:.3f}, min {stats.min:.3f}"
    emit(results_dir, "E11_exact_small.txt", table)
    for row in rows:
        b, bw, bu = row[1], row[2], row[3]
        assert b + 1e-9 >= bw >= bu - 1e-9
    # The algorithms recover at least half the exact optimum on these sets.
    assert stats.min >= 0.5


def test_e11_exact_wireless_speed(benchmark):
    g = erdos_renyi(11, 0.35, rng=99)

    def run():
        bw, _ = wireless_expansion_exact(g, 0.5)
        return bw

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 0
