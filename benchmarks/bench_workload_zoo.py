"""E19 — the workload zoo: expansion advantage beyond one-to-all broadcast.

The paper's (αw, βw)-wireless-expansion guarantee bounds how fast *any*
informed set grows, so its round-complexity consequences are not specific
to single-source broadcast.  This bench runs the workload layer's tasks —
``gossip(k)`` (k random rumor sources per trial) and ``aggregate``
(in-network max / Flajolet–Martin count) — over expander families and the
Section 5 chain through one spec grammar::

    random_regular(256, 8) | decay | classic | gossip(k=16) | trials=32
    chain(16, 4)           | decay | classic | gossip(k=16) | trials=32

Pinned claims (full scale only unless noted):

* **separation** — at ``k=1`` both expander families finish gossip well
  ahead of the chain (the lower-bound topology, despite the chain's
  smaller per-hop width), and in-network aggregation — which must absorb
  *every* node's value — keeps a >= 2x expander advantage;
* **k-damping** — extra sources substitute for expansion: the
  chain/expander separation ratio shrinks as ``k`` grows, because k
  random sources chop the chain's diameter into short segments while
  an expander's frontier was never diameter-bound to begin with;
* **k-monotonicity** — on every family, mean gossip rounds are
  non-increasing in ``k`` (more sources ⇒ shorter worst frontier);
* **equivalence** — ``gossip`` is bit-for-bit identical on the dense and
  bitset engines, and the ``broadcast`` workload is bit-for-bit the
  engine's classic single-source semantics (always asserted, smoke
  included).
"""

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import render_table
from repro.scenario import Scenario

TRIALS = scaled(32, 8)
SEED = 3
KS = scaled((1, 4, 16), (1, 4))

#: (label, graph segment) — two expander families against the chain.
FAMILIES = (
    ("random_regular", "random_regular(256, 8)"),
    ("margulis", "margulis(16)"),
    ("chain", "chain(16, 4)"),
)

HEADERS = ["family", "n", "workload", "mean rounds", "max", "completion"]

_RESULT_FIELDS = (
    "rounds",
    "completed",
    "informed_per_round",
    "first_informed_round",
    "transmissions",
)


def _batches_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, f), getattr(b, f)) for f in _RESULT_FIELDS
    )


def _spec(graph_seg: str, workload_seg: str) -> Scenario:
    return Scenario.from_string(
        f"{graph_seg} | decay | classic | {workload_seg} "
        f"| trials={TRIALS} | seed={SEED}"
    )


def _point(graph_seg: str, workload_seg: str):
    sc = _spec(graph_seg, workload_seg)
    batch = sc.run()
    return sc, batch


def _row(label, sc, batch):
    n = sc.build().built.graph.n
    return [
        label,
        n,
        sc.workload.describe(),
        round(float(batch.rounds.mean()), 1),
        int(batch.rounds.max()),
        round(float(batch.completion_rate), 3),
    ]


def test_e19_workload_zoo(benchmark, results_dir):
    workloads = [f"gossip(k={k})" for k in KS] + ["aggregate(op=max)"]

    def run_zoo():
        table = {}
        for label, graph_seg in FAMILIES:
            for wl in workloads:
                table[(label, wl)] = _point(graph_seg, wl)
        return table

    table = benchmark.pedantic(run_zoo, rounds=1, iterations=1)

    rows = [
        _row(label, *table[(label, wl)])
        for label, _ in FAMILIES
        for wl in workloads
    ]
    means = {
        key: float(batch.rounds.mean()) for key, (_, batch) in table.items()
    }
    # Separation: expanders vs the chain, per workload (ratios > 1).
    separation = {
        wl: {
            label: round(means[("chain", wl)] / means[(label, wl)], 2)
            for label, _ in FAMILIES
            if label != "chain"
        }
        for wl in workloads
    }
    emit(
        results_dir,
        "E19_workload_zoo.txt",
        render_table(
            HEADERS, rows,
            title=(
                f"E19 / workload zoo: Decay, T={TRIALS} "
                "[chain/expander gossip(k=1) separation: "
                + ", ".join(
                    f"{lbl} {r}x"
                    for lbl, r in separation["gossip(k=1)"].items()
                )
                + "]"
            ),
        ),
        data={
            "headers": HEADERS,
            "rows": rows,
            "mean_rounds": {f"{l}|{w}": m for (l, w), m in means.items()},
            "chain_over_expander": separation,
        },
    )
    # Everything completes under the default round cap.
    for (label, wl), (_, batch) in table.items():
        assert batch.completion_rate == 1.0, (label, wl)
    # k-monotonicity: more sources never slow a family down (means over
    # the same per-trial seed streams, so this is tight even at T=8).
    for label, _ in FAMILIES:
        k_means = [means[(label, f"gossip(k={k})")] for k in KS]
        assert all(a >= b for a, b in zip(k_means, k_means[1:])), (
            label, k_means,
        )
    if not SMOKE:
        for label, _ in FAMILIES:
            if label == "chain":
                continue
            # Headline separation at k=1: the chain lags both expanders
            # by a wide margin even though it fields 50% more nodes.
            assert separation["gossip(k=1)"][label] >= 1.5, (
                label, separation["gossip(k=1)"])
            # k-damping: extra sources substitute for expansion, so the
            # chain closes (but never fully erases) the gap as k grows.
            assert (
                separation["gossip(k=1)"][label]
                > separation[f"gossip(k={KS[-1]})"][label]
            ), (label, separation)
            # Aggregation must hear from every node, so the full
            # broadcast-like separation survives any source count.
            assert separation["aggregate(op=max)"][label] >= 2.0, (
                label, separation["aggregate(op=max)"])


def test_e19_engine_and_broadcast_equivalence():
    """The workload layer's two bit-for-bit contracts (smoke included)."""
    from repro.graphs import random_regular
    from repro.radio import DecayProtocol, run_broadcast_batch

    # gossip: dense == bitset, extras included.
    base = _spec("random_regular(256, 8)", f"gossip(k={KS[-1]})")
    dense = base.with_overrides({"engine": "dense"}).run()
    bitset = base.with_overrides({"engine": "bitset"}).run()
    assert _batches_equal(dense, bitset), "gossip engines diverged"
    assert np.array_equal(dense.extras["sources"], bitset.extras["sources"])

    # broadcast workload == the pre-workload engine call, every field.
    graph = random_regular(256, 8, rng=0)
    legacy = run_broadcast_batch(
        graph, DecayProtocol(), trials=TRIALS, seed=SEED
    )
    via_workload = run_broadcast_batch(
        graph, DecayProtocol(), trials=TRIALS, seed=SEED,
        workload="broadcast",
    )
    assert _batches_equal(legacy, via_workload), "broadcast drifted"

    # gossip(k=1, source-pinned) reduces to broadcast exactly.
    pinned = run_broadcast_batch(
        graph, DecayProtocol(), trials=TRIALS, seed=SEED,
        workload="gossip(k=1, source=0)",
    )
    assert _batches_equal(legacy, pinned), "gossip(k=1) != broadcast"


def test_e19_count_aggregation_accuracy():
    """Flajolet–Martin count sketches land within the classic 2x-ish
    band on the expander (order-of-magnitude check, full scale only)."""
    sc = _spec("random_regular(256, 8)", "aggregate(op=count)")
    batch = sc.run()
    assert batch.completion_rate == 1.0
    estimate = batch.extras["estimate"]
    truth = batch.extras["truth"]
    assert (truth == 256).all()
    if not SMOKE:
        # Median of T=32 single-sketch estimates: within 4x of n (an FM
        # sketch without stochastic averaging has ~2x typical error).
        med = float(np.median(estimate))
        assert 256 / 4 <= med <= 256 * 4, med
