"""E22 — array-backend matmul study: numpy vs torch-cpu dense kernels.

The array-backend shim (:mod:`repro.backend`) routes the dense engine's
two sparse products — the neighbour-count matmul behind every channel's
reception rule and the exact int64 delivered-value matmul behind the
value workloads — through a pluggable :class:`~repro.backend.base.ArrayBackend`.
This bench times both kernels and a full seeded Decay broadcast on every
backend installed here (numpy always; torch-cpu when the optional extra
is present), on ``hypercube(14)`` at ``T = 4096`` trials:

* **equivalence first** — every backend's batch outcomes (rounds,
  completion, transmissions, per-round curves) must equal the numpy
  host's exactly: coins are drawn host-side from the shared counter RNG,
  and torch's integer embeddings are exact at this scale (degree 14 ≪
  2²⁴, values ≪ 2⁵³), so the comparison is between two implementations
  of the same computation;
* **throughput** — per-kernel wall time for the count and value matmuls
  (averaged over repeated applications) and end-to-end batch wall time,
  one table row per backend.

Without torch the table is the one-row numpy baseline (the sidecar's
``backends`` column records what actually ran) — the CI ``backend-smoke``
job installs torch CPU wheels so the two-row comparison is exercised on
every push.
"""

import time

import numpy as np
from conftest import emit, scaled

from repro.analysis import render_table
from repro.backend import HOST, available_backends, get_backend
from repro.graphs import hypercube
from repro.radio import DecayProtocol, run_broadcast_batch
from repro.radio.network import RadioNetwork

DIM = scaled(14, 8)
TRIALS = scaled(4096, 128)
KERNEL_REPS = scaled(10, 3)
SEED = 22

HEADERS = [
    "backend",
    "n",
    "trials",
    "mean rounds",
    "counts ms",
    "values ms",
    "wall s",
]


def _outcomes(batch) -> tuple:
    return (
        batch.rounds.tolist(),
        batch.completed.tolist(),
        batch.transmissions.tolist(),
        batch.informed_per_round.tolist(),
        batch.first_informed_round.tolist(),
    )


def _time_kernels(graph, backend) -> tuple[float, float]:
    """Average milliseconds per count-matmul / value-matmul application."""
    rng = np.random.default_rng(SEED)
    transmitting = rng.random((graph.n, TRIALS)) < 0.5
    values = rng.integers(0, 1 << 20, size=(graph.n, TRIALS)).astype(np.int64)
    network = RadioNetwork(graph, backend=backend)
    transmitting_b = backend.asarray(transmitting)
    values_b = backend.asarray(values)
    # Warm the lazily-built operators (and any backend JIT) out of band.
    network.transmit_counts(transmitting_b)
    network.value_counts(values_b)
    backend.synchronize()
    t0 = time.perf_counter()
    for _ in range(KERNEL_REPS):
        counts = network.transmit_counts(transmitting_b)
    backend.synchronize()
    counts_ms = (time.perf_counter() - t0) * 1000 / KERNEL_REPS
    t0 = time.perf_counter()
    for _ in range(KERNEL_REPS):
        delivered = network.value_counts(values_b)
    backend.synchronize()
    values_ms = (time.perf_counter() - t0) * 1000 / KERNEL_REPS
    # The kernels must agree with the host products exactly.
    assert np.array_equal(
        backend.to_numpy(counts),
        HOST.neighbor_counts(
            HOST.adjacency_operator(graph, np.int64), transmitting
        ).astype(np.int64),
    )
    assert np.array_equal(
        backend.to_numpy(delivered),
        graph.adjacency.astype(np.int64) @ values,
    )
    return counts_ms, values_ms


def _measure(graph, name: str):
    backend = get_backend(name)
    counts_ms, values_ms = _time_kernels(graph, backend)
    t0 = time.perf_counter()
    batch = run_broadcast_batch(
        graph, DecayProtocol(), trials=TRIALS, seed=SEED, backend=backend
    )
    wall = time.perf_counter() - t0
    return batch, {
        "backend": name,
        "n": graph.n,
        "trials": TRIALS,
        "mean_rounds": float(np.mean(batch.rounds)),
        "counts_ms": counts_ms,
        "values_ms": values_ms,
        "wall_s": wall,
    }


def test_e22_backend_matmul(benchmark, results_dir):
    graph = hypercube(DIM)
    ran = [name for name, ok in sorted(available_backends().items()) if ok]

    def compare():
        return [_measure(graph, name) for name in ran]

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    host_batch = next(b for b, row in results if row["backend"] == "numpy")
    for batch, row in results:
        assert _outcomes(batch) == _outcomes(host_batch), row["backend"]
    rows = [
        [
            row["backend"],
            row["n"],
            row["trials"],
            f"{row['mean_rounds']:.1f}",
            f"{row['counts_ms']:.2f}",
            f"{row['values_ms']:.2f}",
            f"{row['wall_s']:.2f}",
        ]
        for _, row in results
    ]
    emit(
        results_dir,
        "E22_backend_matmul.txt",
        render_table(
            HEADERS, rows,
            title=(
                f"E22: dense-kernel throughput by array backend "
                f"(hypercube({DIM}), T={TRIALS})"
            ),
        ),
        data=[row for _, row in results],
        engine="dense",
        backend=",".join(ran),
    )
