"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` regenerates one experiment from DESIGN.md §4: it
computes the reproduction table, archives it under ``benchmarks/results/``,
asserts the paper's claimed shape, and times the core computation via
pytest-benchmark.

The benches route their plumbing through :mod:`repro.runtime`: every
:func:`emit` call writes a machine-readable ``.json`` sidecar next to the
``.txt`` table via the runtime store's shared JSON writer, and the
``REPRO_JOBS`` environment contract (exported by ``repro run E<k> --jobs
N`` / :func:`repro.analysis.run_experiment`) supplies :data:`JOBS`, the
worker count for benches that schedule through the runtime executor.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.runtime.executor import default_jobs
from repro.runtime.store import write_json_payload

#: CI's bench-smoke job sets ``REPRO_BENCH_SMOKE=1`` to run every bench at
#: tiny scale — the scripts can't silently rot, at a fraction of the cost.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")

#: Worker-process count for runtime-scheduled benches (the ``REPRO_JOBS``
#: contract of ``run_experiment``/``repro run``; E16 honours it).
JOBS = default_jobs(fallback=1)

# Smoke tables land in a scratch subdirectory so a smoke run can never
# clobber the checked-in full-scale tables under results/.
_BASE_RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
RESULTS_DIR = os.path.join(_BASE_RESULTS, "smoke") if SMOKE else _BASE_RESULTS


def scaled(full, smoke):
    """Pick the full-size or smoke-size value of a benchmark knob.

    Statistical/performance acceptance assertions should be kept out of
    smoke runs (they need the full sample sizes); shape and equivalence
    assertions stay on.
    """
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def peak_rss_bytes() -> int | None:
    """The process's lifetime peak resident set size in bytes.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; ``None`` where the
    ``resource`` module is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only CI
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def emit(
    results_dir: str, name: str, text: str, data=None, engine=None, backend=None
) -> None:
    """Print a table, archive it for EXPERIMENTS.md, and write the
    machine-readable ``.json`` sidecar (``data`` carries structured rows;
    the rendered table always rides along).  ``engine`` records which
    broadcast engine produced the numbers and ``backend`` which array
    backend the dense kernels ran on (``None`` for benches where the
    distinction doesn't apply — the host numpy default); ``peak_rss_bytes``
    snapshots the process peak RSS at emit time so memory regressions are
    visible in archived sidecars."""
    print("\n" + text)
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    stem = os.path.splitext(name)[0]
    write_json_payload(
        os.path.join(results_dir, stem + ".json"),
        {
            "name": stem,
            "experiment": stem.split("_")[0],
            "smoke": SMOKE,
            "jobs": JOBS,
            "engine": engine,
            "backend": backend,
            "peak_rss_bytes": peak_rss_bytes(),
            "table": text.splitlines(),
            "data": data,
        },
    )
