"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` regenerates one experiment from DESIGN.md §4: it
computes the reproduction table, archives it under ``benchmarks/results/``,
asserts the paper's claimed shape, and times the core computation via
pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

#: CI's bench-smoke job sets ``REPRO_BENCH_SMOKE=1`` to run every bench at
#: tiny scale — the scripts can't silently rot, at a fraction of the cost.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")

# Smoke tables land in a scratch subdirectory so a smoke run can never
# clobber the checked-in full-scale tables under results/.
_BASE_RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
RESULTS_DIR = os.path.join(_BASE_RESULTS, "smoke") if SMOKE else _BASE_RESULTS


def scaled(full, smoke):
    """Pick the full-size or smoke-size value of a benchmark knob.

    Statistical/performance acceptance assertions should be kept out of
    smoke runs (they need the full sample sizes); shape and equivalence
    assertions stay on.
    """
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a table and archive it for EXPERIMENTS.md."""
    print("\n" + text)
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
