"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` regenerates one experiment from DESIGN.md §4: it
computes the reproduction table, archives it under ``benchmarks/results/``,
asserts the paper's claimed shape, and times the core computation via
pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a table and archive it for EXPERIMENTS.md."""
    print("\n" + text)
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
