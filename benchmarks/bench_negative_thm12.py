"""E2 — Theorem 1.2 / Corollary 4.11: worst-case wireless expanders.

Builds the Section 4.3.3 plugged graphs over a parameter grid and shows the
planted set ``S*``'s wireless expansion collapsing by the promised
``log min{Δ/β, Δβ}`` factor while its ordinary expansion stays ``β/ε``:
the measured gap column tracks the theory line.
"""

import math

from conftest import emit

from repro.analysis import render_table
from repro.expansion import expansion_of_set
from repro.graphs import random_regular, worst_case_expander


def negative_rows():
    rows = []
    base = random_regular(512, 64, rng=7)
    for beta, eps in [(2.0, 0.45), (2.0, 0.35), (1.0, 0.45), (4.0, 0.45), (2.0, 0.25)]:
        try:
            wc = worst_case_expander(base, beta=beta, epsilon=eps, rng=8)
        except ValueError:
            continue
        ordinary = expansion_of_set(wc.graph, wc.planted_set)
        cap = wc.planted_wireless_expansion_cap
        core = wc.core
        log_term = math.log2(
            min(core.max_degree / core.expansion, core.max_degree * core.expansion)
        )
        rows.append(
            [
                beta,
                eps,
                core.mode,
                core.s,
                core.multiplier,
                wc.planted_set.size,
                round(ordinary, 3),
                round(cap, 3),
                round(ordinary / cap, 3),
                round(log_term, 3),
            ]
        )
    return rows


HEADERS = [
    "β",
    "ε",
    "core",
    "s",
    "k",
    "|S*|",
    "β(S*)",
    "βw(S*)<=",
    "gap β/βw",
    "log-term",
]


def test_e2_negative_theorem12(benchmark, results_dir):
    rows = benchmark.pedantic(negative_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E2_negative_thm12.txt",
        render_table(HEADERS, rows, title="E2 / Theorem 1.2: planted bad sets"),
    )
    assert rows, "no parameter point fit the regimes"
    for row in rows:
        ordinary, cap, gap, log_term = row[6], row[7], row[8], row[9]
        # The wireless cap is genuinely below the ordinary expansion...
        assert cap < ordinary
        # ...by at least a constant fraction of the log factor (Lemma 4.6
        # guarantees gap ≥ log_term/4).
        assert gap >= log_term / 4 - 1e-9


def test_e2_construction_speed(benchmark):
    base = random_regular(512, 64, rng=9)
    wc = benchmark.pedantic(
        lambda: worst_case_expander(base, beta=2.0, epsilon=0.45, rng=10),
        rounds=1,
        iterations=1,
    )
    assert wc.graph.n >= 512
