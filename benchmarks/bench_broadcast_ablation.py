"""E12 — ablations: protocol comparison and the sampling-scale choice.

(1) Broadcast protocols on the Section 5 chain and on an expander: flooding
(collision-prone), round-robin (collision-free but slow), Decay, and the
spokesman genie.  Reproduces the qualitative ordering the paper's
introduction lays out: collisions are the enemy; scheduling around them via
wireless expansion wins.

(2) The Lemma 4.2 scale ablation: payoff of ``2^{-j}`` sampling on the core
graph as ``j`` sweeps away from the largest-class scale ``j*`` — the payoff
peaks at (or near) ``j*``, validating the decay-style choice.
"""

import numpy as np
from conftest import emit

from repro.analysis import render_table, summarize
from repro.graphs import broadcast_chain, core_graph, random_regular
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    RoundRobinProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
)
from repro.spokesman import evaluate_subset
from repro.spokesman.sampling import largest_degree_class


def protocol_rows():
    chain = broadcast_chain(8, 4, rng=121)
    expander = random_regular(128, 8, rng=122)
    rows = []
    for gname, graph, source, cap in [
        ("chain(8x4)", chain.graph, chain.root, 4000),
        ("rr(128,8)", expander, 0, 4000),
    ]:
        for proto in (
            FloodingProtocol(),
            RoundRobinProtocol(),
            DecayProtocol(),
            SpokesmanBroadcastProtocol(),
        ):
            rounds = []
            done = True
            for rep in range(3):
                res = run_broadcast(
                    graph, proto, source=source, max_rounds=cap, seed=300 + rep
                )
                rounds.append(res.rounds)
                done = done and res.completed
            stats = summarize(rounds)
            rows.append(
                [gname, proto.name, done, round(stats.mean, 1), stats.min, stats.max]
            )
    return rows


PROTO_HEADERS = ["graph", "protocol", "completed", "rounds mean", "min", "max"]


def test_e12_protocol_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(protocol_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E12_protocol_ablation.txt",
        render_table(PROTO_HEADERS, rows, title="E12a / protocol comparison"),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for gname in ("chain(8x4)", "rr(128,8)"):
        genie = by_key[(gname, "spokesman")]
        decay = by_key[(gname, "decay")]
        robin = by_key[(gname, "round-robin")]
        assert genie[2] and decay[2] and robin[2]
        # Genie ≤ Decay ≤ RoundRobin in rounds (the paper's qualitative
        # ordering: better collision handling -> faster broadcast).
        assert genie[3] <= decay[3] <= robin[3]


def scale_rows():
    gs = core_graph(64)
    j_star, members = largest_degree_class(gs)
    gen = np.random.default_rng(123)
    rows = []
    for j in range(0, 8):
        payoffs = []
        for _ in range(12):
            keep = gen.random(gs.n_left) < 2.0 ** (-j)
            payoffs.append(
                evaluate_subset(gs, np.flatnonzero(keep), "scale").unique_count
            )
        stats = summarize(payoffs)
        rows.append(
            [j, j == j_star, round(stats.mean, 1), stats.min, stats.max]
        )
    return rows, j_star


SCALE_HEADERS = ["j (p=2^-j)", "largest-class j*", "payoff mean", "min", "max"]


def test_e12_sampling_scale_ablation(benchmark, results_dir):
    rows, j_star = benchmark.pedantic(scale_rows, rounds=1, iterations=1)
    emit(
        results_dir,
        "E12_scale_ablation.txt",
        render_table(
            SCALE_HEADERS, rows, title="E12b / Lemma 4.2 sampling-scale sweep"
        ),
    )
    means = {row[0]: row[2] for row in rows}
    gs = core_graph(64)
    _, members = largest_degree_class(gs)
    # Lemma 4.2's promise: the chosen scale clears the e^{-3}·|N_j| floor.
    assert means[j_star] >= np.exp(-3) * members.size
    # And sampling too sparsely decays: the peak is not at the largest j.
    best_j = max(means, key=means.get)
    assert best_j < max(means)
    assert means[best_j] > means[max(means)]
