"""Telemetry overhead pin — collision telemetry must stay cheap.

The observability layer's contract (DESIGN.md §Observability) is that
switching ``telemetry=on`` keeps every observable bit-for-bit identical
and costs at most a modest constant factor.  This bench pins that factor
on the flagship batched workload::

    random_regular(100_000, 16) | decay | classic | trials=64 | engine=bitset

measured end to end (graph build + batched run — the unit a user actually
times), with an interleaved paired design: warm both arms once, then run
back-to-back off/on pairs and take the **minimum paired ratio**
``min_i (on_i / off_i) - 1``.  Pairing cancels common-mode machine drift
and the minimum approximates the noise-free overhead on shared hardware,
where background load only ever adds time.  Because single walls on this
container swing by ±30%, the loop samples at least ``MIN_PAIRS`` pairs
and keeps going (to ``MAX_PAIRS``) while the running minimum still sits
above the bar — extra samples can only tighten a noise-inflated minimum,
never rescue a genuinely slow implementation arm that exceeds the bar in
*every* window.  The full-scale gate is

* **overhead** — telemetry-on wall ≤ 15% over telemetry-off;

and at every scale (smoke included):

* **no-op invariance** — all five batch observables (rounds, completion,
  first informed round, informed-per-round, transmissions) are
  bit-for-bit identical between the off and on arms;
* **payload shape** — the on arm carries exactly the five ``telemetry_``
  extras at ``(R, T)`` with non-negative entries.
"""

import time

import numpy as np
from conftest import SMOKE, emit, scaled

from repro.analysis import render_table
from repro.graphs import random_regular
from repro.obs.telemetry import TELEMETRY_FIELDS, RoundTelemetry
from repro.radio import DecayProtocol, run_broadcast_batch

N = scaled(100_000, 1000)
DEGREE = 16
TRIALS = 64
SEED = 7
MIN_PAIRS = scaled(3, 1)
MAX_PAIRS = scaled(8, 1)
OVERHEAD_BAR = 0.15

HEADERS = ["arm", "wall (s)", "rounds", "completion"]

_RESULT_FIELDS = (
    "rounds",
    "completed",
    "informed_per_round",
    "first_informed_round",
    "transmissions",
)


def _run(telemetry: bool):
    start = time.perf_counter()
    graph = random_regular(N, DEGREE, rng=np.random.default_rng(SEED))
    batch = run_broadcast_batch(
        graph, DecayProtocol(), trials=TRIALS, seed=SEED,
        engine="bitset", telemetry=telemetry,
    )
    return time.perf_counter() - start, batch


def test_telemetry_overhead(benchmark, results_dir):
    def measure():
        _run(False)  # warm both arms: allocator, import, branch caches
        _run(True)
        pairs = []
        while len(pairs) < MAX_PAIRS:
            pairs.append((_run(False), _run(True)))
            if len(pairs) < MIN_PAIRS:
                continue
            best = min(on_t / off_t - 1.0
                       for (off_t, _), (on_t, _) in pairs)
            if best <= OVERHEAD_BAR:
                break  # the minimum has converged under the bar
        return pairs

    pairs = benchmark.pedantic(measure, rounds=1, iterations=1)
    off_walls = [off_t for (off_t, _), _ in pairs]
    on_walls = [on_t for _, (on_t, _) in pairs]
    ratios = [on_t / off_t - 1.0 for off_t, on_t in zip(off_walls, on_walls)]
    overhead = min(ratios)
    off_batch = pairs[-1][0][1]
    on_batch = pairs[-1][1][1]

    rows = [
        ["telemetry=off", round(min(off_walls), 3),
         round(float(off_batch.rounds.mean()), 1),
         round(float(off_batch.completion_rate), 3)],
        ["telemetry=on", round(min(on_walls), 3),
         round(float(on_batch.rounds.mean()), 1),
         round(float(on_batch.completion_rate), 3)],
    ]
    emit(
        results_dir,
        "bench_telemetry_overhead.txt",
        render_table(
            HEADERS, rows,
            title=(
                f"Telemetry overhead: random_regular({N}, {DEGREE}), decay, "
                f"T={TRIALS}, bitset — min paired overhead "
                f"{100 * overhead:+.1f}% over {len(pairs)} pair(s)"
            ),
        ),
        data={
            "headers": HEADERS,
            "rows": rows,
            "off_walls": off_walls,
            "on_walls": on_walls,
            "paired_overheads": ratios,
            "overhead": overhead,
        },
        engine="bitset",
    )

    # No-op invariance: telemetry may never perturb an observable.
    for name in _RESULT_FIELDS:
        assert np.array_equal(
            getattr(off_batch, name), getattr(on_batch, name)
        ), name
    assert not any(k.startswith("telemetry_") for k in off_batch.extras)

    tel = RoundTelemetry.from_batch(on_batch)
    assert tel.trials == TRIALS
    assert tel.rounds == int(on_batch.rounds.max())
    for name in TELEMETRY_FIELDS:
        mat = getattr(tel, name)
        assert mat.shape == (tel.rounds, TRIALS)
        assert (mat >= 0).all(), name

    if not SMOKE:
        # The headline gate: ≤ 15% wall overhead at n=10^5, T=64.
        assert overhead <= OVERHEAD_BAR, (overhead, ratios)
